#include "wavesim/batch_evaluator.h"

#include <algorithm>
#include <limits>
#include <thread>
#include <utility>

#include "core/detector.h"
#include "core/encoding.h"
#include "util/error.h"

namespace sw::wavesim {

std::size_t clamp_batch_threads(std::size_t num_threads,
                                std::size_t num_words) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::min(num_threads, std::max<std::size_t>(1, num_words));
}

BatchEvaluator::BatchEvaluator(const sw::core::DataParallelGate& gate,
                               BatchOptions options)
    : BatchEvaluator(gate,
                     std::make_shared<const EvalPlan>(gate, options.freq_tol,
                                                      options.precision),
                     options) {}

BatchEvaluator::BatchEvaluator(const sw::core::DataParallelGate& gate,
                               std::shared_ptr<const EvalPlan> plan,
                               BatchOptions options)
    : gate_(&gate), plan_(std::move(plan)), pool_(options.num_threads) {
  SW_REQUIRE(plan_ != nullptr, "shared evaluation plan must not be null");
  SW_REQUIRE(plan_->freq_tol() == options.freq_tol,
             "shared plan was built with a different freq_tol");
  SW_REQUIRE(plan_->requested_precision() ==
                 resolve_precision(options.precision),
             "shared plan was built with a different precision");
  const auto& spec = gate.layout().spec;
  SW_REQUIRE(plan_->num_channels() == spec.frequencies.size() &&
                 plan_->num_inputs() == spec.num_inputs,
             "shared plan does not match the gate's layout shape");
}

template <typename BitFn>
std::vector<std::vector<sw::core::ChannelResult>> BatchEvaluator::run(
    std::size_t num_words, const BitFn& bit) const {
  const EvalPlan& plan = *plan_;
  const auto channels = plan.channels();
  const auto inputs = plan.inputs();
  const auto slots = plan.slots();
  const std::size_t stride = plan.slot_count();
  const std::size_t detectors = plan.num_detectors();
  const kernels::Kernel& kernel = kernels::active_kernel();
  // Same overflow guards as evaluate_bits: the packed matrix and the flat
  // result buffer sizes are both num_words products and must not wrap.
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  SW_REQUIRE(stride == 0 || num_words <= kMax / stride,
             "num_words x slot_count() overflows size_t");
  SW_REQUIRE(detectors == 0 || num_words <= kMax / detectors,
             "num_words x detector count overflows size_t");

  // Kernelised ChannelResult path: pack the accessor's bits into the
  // row-major kernel matrix (only the slots some contribution actually
  // reads — untouched slots stay 0 and are invisible to the kernels), then
  // run the same SoA accumulation as evaluate_bits, with the full complex
  // pair and decide_phase. Workers pack and evaluate disjoint row ranges,
  // so one pass over the pool covers both stages.
  std::vector<std::uint8_t> packed(num_words * stride, 0);
  std::vector<sw::core::ChannelResult> flat(num_words * detectors);
  std::vector<std::vector<sw::core::ChannelResult>> out(num_words);
  pool_.parallel_for(num_words, [&](std::size_t begin, std::size_t end) {
    for (std::size_t w = begin; w < end; ++w) {
      std::uint8_t* row = packed.data() + w * stride;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        row[slots[i]] = bit(w, channels[i], inputs[i]);
      }
    }
    kernel.eval_channels(plan, packed.data(), begin, end, flat.data());
    // Each worker owns rows [begin, end): wrap them into the nested result
    // here instead of a second sequential pass over the whole batch.
    for (std::size_t w = begin; w < end; ++w) {
      out[w].assign(
          flat.begin() + static_cast<std::ptrdiff_t>(w * detectors),
          flat.begin() + static_cast<std::ptrdiff_t>((w + 1) * detectors));
    }
  });
  return out;
}

std::vector<std::vector<sw::core::ChannelResult>> BatchEvaluator::evaluate(
    std::span<const std::vector<sw::core::Bits>> batch) const {
  const std::size_t n = plan_->num_channels();
  const std::size_t m = plan_->num_inputs();
  for (const auto& word : batch) {
    SW_REQUIRE(word.size() == n, "each word needs one bit vector per channel");
    for (const auto& bits : word) {
      SW_REQUIRE(bits.size() == m, "each channel needs m bits");
    }
  }
  return run(batch.size(),
             [&batch](std::size_t w, std::size_t ch, std::size_t in) {
               return batch[w][ch][in];
             });
}

std::vector<std::vector<sw::core::ChannelResult>>
BatchEvaluator::evaluate_uniform(std::span<const sw::core::Bits> patterns) const {
  const std::size_t m = plan_->num_inputs();
  for (const auto& p : patterns) {
    SW_REQUIRE(p.size() == m, "each pattern needs m bits");
  }
  return run(patterns.size(),
             [&patterns](std::size_t w, std::size_t, std::size_t in) {
               return patterns[w][in];
             });
}

std::vector<std::vector<sw::core::ChannelResult>> BatchEvaluator::evaluate_with(
    std::size_t num_words, const BitAccessor& bit) const {
  SW_REQUIRE(static_cast<bool>(bit), "bit accessor must be callable");
  return run(num_words, bit);
}

std::vector<std::uint8_t> BatchEvaluator::evaluate_bits(
    std::size_t num_words, std::span<const std::uint8_t> bits) const {
  return evaluate_bits(num_words, bits, kernels::active_kernel());
}

std::vector<std::uint8_t> BatchEvaluator::evaluate_bits(
    std::size_t num_words, std::span<const std::uint8_t> bits,
    const kernels::Kernel& kernel) const {
  const std::size_t stride = plan_->slot_count();
  const std::size_t channels = plan_->num_channels();
  // Guard both products before forming them: a num_words large enough to
  // wrap num_words * stride could otherwise pass the shape check against a
  // tiny span and index far out of bounds.
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  SW_REQUIRE(stride == 0 || num_words <= kMax / stride,
             "num_words x slot_count() overflows size_t");
  SW_REQUIRE(channels == 0 || num_words <= kMax / channels,
             "num_words x channel count overflows size_t");
  SW_REQUIRE(bits.size() == num_words * stride,
             "packed bit matrix must be num_words x slot_count");

  // Three-way dispatch on the plan's per-detector margin verdicts: every
  // detector proved -> the pure f32 entry; a genuine mix -> the block-f32
  // entry (f32 run + f64 rescue lanes); none proved (or f64 requested) ->
  // the double entry. All three decode bit-identically by construction.
  const bool f32 = plan_->has_f32();
  const bool block = plan_->is_block();
  std::vector<std::uint8_t> out(num_words * channels);
  pool_.parallel_for(num_words, [&](std::size_t begin, std::size_t end) {
    if (f32) {
      kernel.eval_bits_f32(*plan_, bits.data(), begin, end, out.data());
    } else if (block) {
      kernel.eval_bits_mixed(*plan_, bits.data(), begin, end, out.data());
    } else {
      kernel.eval_bits(*plan_, bits.data(), begin, end, out.data());
    }
  });
  return out;
}

}  // namespace sw::wavesim
