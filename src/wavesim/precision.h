// Evaluation precision selection for the SoA plan/kernel layer.
//
// The decode the serving path cares about is a sign test on an accumulated
// real part, and the paper's layouts leave enormous phase margins between
// the logic-0 and logic-1 superpositions — double precision is overkill for
// sweep throughput. kFloat32 asks for single-precision plan arrays and the
// 8-wide f32 kernels; whether a given layout actually gets them is decided
// per plan by a margin analysis plus an exhaustive validation sweep at
// build time (see EvalPlan), falling back to the double plan whenever f32
// accumulation error could cross a decode threshold. kFloat64 is the
// default and preserves the bit-exact-vs-scalar-path contract everywhere.
//
// Like the kernel choice (SW_EVAL_KERNEL), the process-wide default can be
// forced with SW_EVAL_PRECISION=f64|f32; unknown values fail loudly on
// first use instead of silently serving a fallback.
#pragma once

#include <cstdint>
#include <string_view>

namespace sw::wavesim {

enum class Precision : std::uint8_t {
  kAuto = 0,     ///< resolve to SW_EVAL_PRECISION, else kFloat64
  kFloat64 = 1,  ///< double plan arrays, bit-exact vs the scalar gate path
  kFloat32 = 2,  ///< float plan arrays where the margin analysis allows
};

/// Canonical short name: "auto" | "f64" | "f32".
std::string_view precision_name(Precision precision);

/// Parses "f64" / "f32" (the SW_EVAL_PRECISION vocabulary; "auto" is not a
/// valid forced value). Throws sw::util::Error on anything else.
Precision parse_precision(std::string_view name);

/// Resolves a forced SW_EVAL_PRECISION value, wrapping parse errors with
/// the variable name so a typo'd override fails with an actionable message
/// rather than a bare unknown-name error.
Precision precision_from_env(std::string_view value);

/// The process-wide default: SW_EVAL_PRECISION when set (unknown values
/// throw on first use, then retry on the next call), else kFloat64. Never
/// returns kAuto. Cached after the first successful call.
Precision active_precision();

/// kAuto -> active_precision(); anything else passes through.
Precision resolve_precision(Precision requested);

}  // namespace sw::wavesim
