#include "wavesim/precision.h"

#include <cstdlib>
#include <string>

#include "util/error.h"

namespace sw::wavesim {

std::string_view precision_name(Precision precision) {
  switch (precision) {
    case Precision::kAuto:
      return "auto";
    case Precision::kFloat64:
      return "f64";
    case Precision::kFloat32:
      return "f32";
  }
  return "?";
}

Precision parse_precision(std::string_view name) {
  if (name == "f64") return Precision::kFloat64;
  if (name == "f32") return Precision::kFloat32;
  throw sw::util::Error("unknown evaluation precision '" + std::string(name) +
                        "' (expected 'f64' or 'f32')");
}

Precision precision_from_env(std::string_view value) {
  try {
    return parse_precision(value);
  } catch (const sw::util::Error& e) {
    throw sw::util::Error(std::string("SW_EVAL_PRECISION: ") + e.what());
  }
}

Precision active_precision() {
  // Magic-static initialisation mirrors kernels::active_kernel(): the
  // lambda runs once; a bad override propagates its exception and the
  // initialisation retries on the next call.
  static const Precision chosen = []() -> Precision {
    const char* env = std::getenv("SW_EVAL_PRECISION");
    if (env != nullptr && *env != '\0') return precision_from_env(env);
    return Precision::kFloat64;
  }();
  return chosen;
}

Precision resolve_precision(Precision requested) {
  return requested == Precision::kAuto ? active_precision() : requested;
}

}  // namespace sw::wavesim
