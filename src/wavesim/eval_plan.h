// Frozen, layout-derived evaluation plan in structure-of-arrays form.
//
// For a fixed gate layout the contribution of source j to detector d is one
// of exactly two complex constants (launch phase 0 or pi). PR 1 stored the
// pair as an array of structs inside BatchEvaluator, which interleaved the
// phasor constants with indexing metadata and blocked vectorisation of the
// per-word accumulation. EvalPlan is the extracted, immutable artefact: the
// constants live in separate contiguous cache-line-aligned arrays
// (re0/im0/re1/im1), the per-contribution flat input-slot index in its own
// array, and detectors are described by [offset, offset+count) ranges over
// those arrays — exactly the shape the kernels in wavesim/kernels consume.
//
// The arrays preserve scalar source order per detector, and every constant
// is produced by the same engine arithmetic as the scalar path, so any
// kernel that accumulates a detector's range in index order is bit-for-bit
// identical to DataParallelGate::evaluate by construction.
//
// An EvalPlan is immutable after construction and holds no reference to the
// gate or engine, so it is safe to share across threads and to cache (see
// sw::serve::PlanCache, which stores one per layout and hands it to every
// request for that layout).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/gate.h"
#include "util/aligned.h"

namespace sw::wavesim {

class EvalPlan {
 public:
  /// Builds the plan from the gate's layout via its engine (one
  /// steady-phasor solve per (detector, source, launch-phase) triple — the
  /// expensive per-layout cost the serve-layer cache amortises). Neither
  /// the gate nor the engine needs to outlive the plan. `freq_tol` is the
  /// relative source/detector frequency matching tolerance and must equal
  /// the scalar path's for bit-exact equivalence.
  explicit EvalPlan(const sw::core::DataParallelGate& gate,
                    double freq_tol = kDefaultFreqTol);

  double freq_tol() const { return freq_tol_; }
  std::size_t num_channels() const { return num_channels_; }
  std::size_t num_inputs() const { return num_inputs_; }
  /// Input slots per word: num_channels() * num_inputs(); the bit of input
  /// `in` on channel `ch` lives at flat column ch * num_inputs() + in.
  std::size_t slot_count() const { return num_channels_ * num_inputs_; }
  std::size_t num_detectors() const { return det_channels_.size(); }
  std::size_t num_contributions() const { return re0_.size(); }

  /// Detector d's contributions occupy indices [detector_offsets()[d],
  /// detector_offsets()[d + 1]) of the per-contribution arrays, in scalar
  /// source order. Size num_detectors() + 1.
  std::span<const std::size_t> detector_offsets() const {
    return det_offsets_;
  }
  /// Output channel written by detector d (row index of the decoded bit).
  std::span<const std::size_t> detector_channels() const {
    return det_channels_;
  }

  /// Per-contribution SoA arrays (all of size num_contributions(), 64-byte
  /// aligned): real/imaginary parts of the phasor contributed when the
  /// governing bit is 0 resp. 1.
  std::span<const double> re0() const { return re0_; }
  std::span<const double> im0() const { return im0_; }
  std::span<const double> re1() const { return re1_; }
  std::span<const double> im1() const { return im1_; }

  /// Flat input-slot index of each contribution's governing bit (column
  /// into a packed word row; always < slot_count()).
  std::span<const std::uint32_t> slots() const { return slots_; }
  /// The same governing bit as (channel, input) coordinates, for callers
  /// that index nested per-channel words instead of packed rows.
  std::span<const std::uint32_t> channels() const { return channels_; }
  std::span<const std::uint32_t> inputs() const { return inputs_; }

 private:
  double freq_tol_ = kDefaultFreqTol;
  std::size_t num_channels_ = 0;
  std::size_t num_inputs_ = 0;

  std::vector<std::size_t> det_offsets_;
  std::vector<std::size_t> det_channels_;

  sw::util::AlignedVector<double> re0_;
  sw::util::AlignedVector<double> im0_;
  sw::util::AlignedVector<double> re1_;
  sw::util::AlignedVector<double> im1_;
  sw::util::AlignedVector<std::uint32_t> slots_;
  sw::util::AlignedVector<std::uint32_t> channels_;
  sw::util::AlignedVector<std::uint32_t> inputs_;
};

}  // namespace sw::wavesim
