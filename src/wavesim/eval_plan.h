// Frozen, layout-derived evaluation plan in structure-of-arrays form.
//
// For a fixed gate layout the contribution of source j to detector d is one
// of exactly two complex constants (launch phase 0 or pi). PR 1 stored the
// pair as an array of structs inside BatchEvaluator, which interleaved the
// phasor constants with indexing metadata and blocked vectorisation of the
// per-word accumulation. EvalPlan is the extracted, immutable artefact: the
// constants live in separate contiguous cache-line-aligned arrays
// (re0/im0/re1/im1), the per-contribution flat input-slot index in its own
// array, and detectors are described by [offset, offset+count) ranges over
// those arrays — exactly the shape the kernels in wavesim/kernels consume.
//
// The arrays preserve scalar source order per detector, and every constant
// is produced by the same engine arithmetic as the scalar path, so any
// kernel that accumulates a detector's range in index order is bit-for-bit
// identical to DataParallelGate::evaluate by construction.
//
// A plan built with Precision::kFloat32 additionally carries float mirrors
// of the real-part arrays for the wide f32 kernels — but only for detectors
// that have been *proved* safe at build time. The margin proof runs per
// detector: the minimum decode margin (the smallest |Re| any bit assignment
// can produce at that detector) is computed in double, checked against a
// worst-case f32 accumulation error bound, and an exhaustive validation
// sweep replays the exact f32 accumulation to confirm every reachable
// decode matches the double plan. The proof's verdict is a per-detector
// precision tag, not an all-or-nothing plan property:
//
//   * every detector proved  -> a pure f32 plan (has_f32(), the PR 4 case);
//   * every detector rejected -> the plan degenerates to exactly the double
//     plan (no float arrays, identical decode path);
//   * a mix -> a *block-f32* plan: detectors are partitioned at build time
//     into two contiguous runs — the proved detectors first (served by f32
//     accumulation over the float mirrors), the rejected ones after (served
//     by f64 "rescue lanes" over the double arrays) — so the kernels' mixed
//     entry point runs two branch-free loops instead of a per-detector
//     precision branch. detector_results() maps each plan-order detector
//     back to its original layout position for the ChannelResult paths.
//
// Decoded bits are identical across precisions on every plan this class
// will ever serve: f32 lanes are enumerated-proved, rescue lanes are f64 by
// construction.
//
// An EvalPlan is immutable after construction and holds no reference to the
// gate or engine, so it is safe to share across threads and to cache (see
// sw::serve::PlanCache, which stores one per (layout, precision) and hands
// it to every request for that layout).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/gate.h"
#include "util/aligned.h"
#include "wavesim/precision.h"

namespace sw::wavesim {

class EvalPlan {
 public:
  /// Builds the plan from the gate's layout via its engine (one
  /// steady-phasor solve per (detector, source, launch-phase) triple — the
  /// expensive per-layout cost the serve-layer cache amortises). Neither
  /// the gate nor the engine needs to outlive the plan. `freq_tol` is the
  /// relative source/detector frequency matching tolerance and must equal
  /// the scalar path's for bit-exact equivalence. `precision` is the
  /// *requested* precision (kAuto defers to SW_EVAL_PRECISION / f64); the
  /// per-detector margin analysis decides what is actually served — see
  /// num_f32_detectors() / effective_precision().
  explicit EvalPlan(const sw::core::DataParallelGate& gate,
                    double freq_tol = kDefaultFreqTol,
                    Precision precision = Precision::kAuto);

  double freq_tol() const { return freq_tol_; }
  std::size_t num_channels() const { return num_channels_; }
  std::size_t num_inputs() const { return num_inputs_; }
  /// Input slots per word: num_channels() * num_inputs(); the bit of input
  /// `in` on channel `ch` lives at flat column ch * num_inputs() + in.
  std::size_t slot_count() const { return num_channels_ * num_inputs_; }
  std::size_t num_detectors() const { return det_channels_.size(); }
  std::size_t num_contributions() const { return re0_.size(); }

  /// Detector d's contributions occupy indices [detector_offsets()[d],
  /// detector_offsets()[d + 1]) of the per-contribution arrays, in scalar
  /// source order. Size num_detectors() + 1. Detector indices are *plan
  /// order*: on a block-f32 plan the proved detectors occupy [0,
  /// num_f32_detectors()) and the rescue detectors the rest; everywhere
  /// else plan order equals layout order.
  std::span<const std::size_t> detector_offsets() const {
    return det_offsets_;
  }
  /// Output channel written by detector d (row index of the decoded bit).
  std::span<const std::size_t> detector_channels() const {
    return det_channels_;
  }
  /// Original layout position of plan-order detector d — the element index
  /// the ChannelResult kernels write, so reordering detectors for the
  /// block-f32 partition never reorders caller-visible results. Identity
  /// on every non-block plan.
  std::span<const std::size_t> detector_results() const {
    return det_results_;
  }

  /// Per-contribution SoA arrays (all of size num_contributions(), 64-byte
  /// aligned): real/imaginary parts of the phasor contributed when the
  /// governing bit is 0 resp. 1.
  std::span<const double> re0() const { return re0_; }
  std::span<const double> im0() const { return im0_; }
  std::span<const double> re1() const { return re1_; }
  std::span<const double> im1() const { return im1_; }

  /// Flat input-slot index of each contribution's governing bit (column
  /// into a packed word row; always < slot_count()).
  std::span<const std::uint32_t> slots() const { return slots_; }
  /// The same governing bit as (channel, input) coordinates, for callers
  /// that index nested per-channel words instead of packed rows.
  std::span<const std::uint32_t> channels() const { return channels_; }
  std::span<const std::uint32_t> inputs() const { return inputs_; }

  // ------------------------------------------------------- f32 variant --

  /// What the caller asked for, kAuto already resolved (kFloat64/kFloat32).
  Precision requested_precision() const { return requested_; }
  /// The strict verdict: kFloat32 iff *every* decode runs in f32
  /// (has_f32()), kFloat64 otherwise — including block-f32 plans, whose
  /// mix is reported by num_f32_detectors()/num_f64_rescue_detectors()
  /// and precision_label() instead of widening this enum.
  Precision effective_precision() const {
    return has_f32() ? Precision::kFloat32 : Precision::kFloat64;
  }
  /// True iff every detector passed the margin proof (pure f32 plan; the
  /// kernels' eval_bits_f32 entry is legal on the whole plan).
  bool has_f32() const {
    return requested_ == Precision::kFloat32 &&
           num_f32_detectors_ == num_detectors();
  }

  /// Detectors served by f32 accumulation — plan-order indices
  /// [0, num_f32_detectors()). 0 unless kFloat32 was requested.
  std::size_t num_f32_detectors() const { return num_f32_detectors_; }
  /// Detectors that failed the margin proof and run f64 rescue lanes —
  /// plan-order indices [num_f32_detectors(), num_detectors()). 0 when f32
  /// was never requested (nothing was rescued).
  std::size_t num_f64_rescue_detectors() const { return num_rescue_; }
  /// A genuine mix: some detectors f32, some rescued. Selects the kernels'
  /// eval_bits_mixed entry point.
  bool is_block() const { return num_f32_detectors_ > 0 && num_rescue_ > 0; }

  /// Human-readable precision mix: "f64", "f32", or "block-f32(7/8)" —
  /// what logs, stats strings and benches print.
  std::string precision_label() const;

  /// Float mirrors of the real-part arrays, covering exactly the f32 run's
  /// contributions: indices [0, detector_offsets()[num_f32_detectors()]).
  /// Empty when no detector was proved. Only the real parts exist in f32:
  /// the packed decode consumes nothing but sign(Re), and the
  /// ChannelResult paths (which need im for phase and amplitude) always
  /// run in double — those are analog readouts, not thresholded bits, so
  /// single precision buys nothing worth the loss.
  std::span<const float> re0_f32() const { return re0_f32_; }
  std::span<const float> re1_f32() const { return re1_f32_; }

  /// Smallest |Re| any bit assignment can produce at any enumerated
  /// detector, in double (the decode threshold is Re < 0, so this is the
  /// worst-case distance to a bit flip). 0 when the margin analysis was
  /// skipped (kFloat64 requested) or no detector could be enumerated.
  double min_decode_margin() const { return min_decode_margin_; }
  /// Worst-case |f32 accumulation - f64 accumulation| bound over all
  /// detectors and bit assignments (conversion + summation rounding).
  double f32_error_bound() const { return f32_error_bound_; }

  /// Why a kFloat32 request could not run f32 everywhere; empty when every
  /// detector was proved or f32 was never requested. On a block plan this
  /// names how many detectors were rescued and the first rejection reason.
  /// Surfaced through PlanCacheStats / ServiceStats so operators can see
  /// which layouts refuse f32.
  const std::string& f32_rejection() const { return f32_rejection_; }

 private:
  void build_f32();
  void partition_detectors(const std::vector<char>& accepted);

  double freq_tol_ = kDefaultFreqTol;
  Precision requested_ = Precision::kFloat64;
  std::size_t num_channels_ = 0;
  std::size_t num_inputs_ = 0;

  std::vector<std::size_t> det_offsets_;
  std::vector<std::size_t> det_channels_;
  std::vector<std::size_t> det_results_;

  sw::util::AlignedVector<double> re0_;
  sw::util::AlignedVector<double> im0_;
  sw::util::AlignedVector<double> re1_;
  sw::util::AlignedVector<double> im1_;
  sw::util::AlignedVector<std::uint32_t> slots_;
  sw::util::AlignedVector<std::uint32_t> channels_;
  sw::util::AlignedVector<std::uint32_t> inputs_;

  sw::util::AlignedVector<float> re0_f32_;
  sw::util::AlignedVector<float> re1_f32_;
  std::size_t num_f32_detectors_ = 0;
  std::size_t num_rescue_ = 0;
  double min_decode_margin_ = 0.0;
  double f32_error_bound_ = 0.0;
  std::string f32_rejection_;
};

}  // namespace sw::wavesim
