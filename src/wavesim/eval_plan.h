// Frozen, layout-derived evaluation plan in structure-of-arrays form.
//
// For a fixed gate layout the contribution of source j to detector d is one
// of exactly two complex constants (launch phase 0 or pi). PR 1 stored the
// pair as an array of structs inside BatchEvaluator, which interleaved the
// phasor constants with indexing metadata and blocked vectorisation of the
// per-word accumulation. EvalPlan is the extracted, immutable artefact: the
// constants live in separate contiguous cache-line-aligned arrays
// (re0/im0/re1/im1), the per-contribution flat input-slot index in its own
// array, and detectors are described by [offset, offset+count) ranges over
// those arrays — exactly the shape the kernels in wavesim/kernels consume.
//
// The arrays preserve scalar source order per detector, and every constant
// is produced by the same engine arithmetic as the scalar path, so any
// kernel that accumulates a detector's range in index order is bit-for-bit
// identical to DataParallelGate::evaluate by construction.
//
// A plan built with Precision::kFloat32 additionally carries float mirrors
// of the real-part arrays for the 8-wide f32 kernels — but only when the
// layout has been *proved* safe at build time: the minimum decode margin
// (the smallest |Re| any bit assignment can produce at any detector) is
// computed in double, checked against a worst-case f32 accumulation error
// bound, and an exhaustive per-detector validation sweep replays the exact
// f32 accumulation to confirm every reachable decode matches the double
// plan. If any check fails the plan transparently falls back to double
// arrays only (effective_precision() == kFloat64) and records why; decoded
// bits are therefore identical across precisions on every plan this class
// will ever serve.
//
// An EvalPlan is immutable after construction and holds no reference to the
// gate or engine, so it is safe to share across threads and to cache (see
// sw::serve::PlanCache, which stores one per (layout, precision) and hands
// it to every request for that layout).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/gate.h"
#include "util/aligned.h"
#include "wavesim/precision.h"

namespace sw::wavesim {

class EvalPlan {
 public:
  /// Builds the plan from the gate's layout via its engine (one
  /// steady-phasor solve per (detector, source, launch-phase) triple — the
  /// expensive per-layout cost the serve-layer cache amortises). Neither
  /// the gate nor the engine needs to outlive the plan. `freq_tol` is the
  /// relative source/detector frequency matching tolerance and must equal
  /// the scalar path's for bit-exact equivalence. `precision` is the
  /// *requested* precision (kAuto defers to SW_EVAL_PRECISION / f64); the
  /// margin analysis decides what is actually served — see
  /// effective_precision().
  explicit EvalPlan(const sw::core::DataParallelGate& gate,
                    double freq_tol = kDefaultFreqTol,
                    Precision precision = Precision::kAuto);

  double freq_tol() const { return freq_tol_; }
  std::size_t num_channels() const { return num_channels_; }
  std::size_t num_inputs() const { return num_inputs_; }
  /// Input slots per word: num_channels() * num_inputs(); the bit of input
  /// `in` on channel `ch` lives at flat column ch * num_inputs() + in.
  std::size_t slot_count() const { return num_channels_ * num_inputs_; }
  std::size_t num_detectors() const { return det_channels_.size(); }
  std::size_t num_contributions() const { return re0_.size(); }

  /// Detector d's contributions occupy indices [detector_offsets()[d],
  /// detector_offsets()[d + 1]) of the per-contribution arrays, in scalar
  /// source order. Size num_detectors() + 1.
  std::span<const std::size_t> detector_offsets() const {
    return det_offsets_;
  }
  /// Output channel written by detector d (row index of the decoded bit).
  std::span<const std::size_t> detector_channels() const {
    return det_channels_;
  }

  /// Per-contribution SoA arrays (all of size num_contributions(), 64-byte
  /// aligned): real/imaginary parts of the phasor contributed when the
  /// governing bit is 0 resp. 1.
  std::span<const double> re0() const { return re0_; }
  std::span<const double> im0() const { return im0_; }
  std::span<const double> re1() const { return re1_; }
  std::span<const double> im1() const { return im1_; }

  /// Flat input-slot index of each contribution's governing bit (column
  /// into a packed word row; always < slot_count()).
  std::span<const std::uint32_t> slots() const { return slots_; }
  /// The same governing bit as (channel, input) coordinates, for callers
  /// that index nested per-channel words instead of packed rows.
  std::span<const std::uint32_t> channels() const { return channels_; }
  std::span<const std::uint32_t> inputs() const { return inputs_; }

  // ------------------------------------------------------- f32 variant --

  /// What the caller asked for, kAuto already resolved (kFloat64/kFloat32).
  Precision requested_precision() const { return requested_; }
  /// What the plan actually serves: kFloat32 iff the f32 arrays exist,
  /// kFloat64 when f64 was requested *or* the margin analysis rejected f32.
  Precision effective_precision() const {
    return has_f32() ? Precision::kFloat32 : Precision::kFloat64;
  }
  bool has_f32() const { return f32_ok_; }

  /// Float mirrors of the real-part arrays (empty unless has_f32()). Only
  /// the real parts exist in f32: the packed decode consumes nothing but
  /// sign(Re), and the ChannelResult paths (which need im for phase and
  /// amplitude) always run in double — those are analog readouts, not
  /// thresholded bits, so single precision buys nothing worth the loss.
  std::span<const float> re0_f32() const { return re0_f32_; }
  std::span<const float> re1_f32() const { return re1_f32_; }

  /// Smallest |Re| any bit assignment can produce at any detector, in
  /// double (the decode threshold is Re < 0, so this is the worst-case
  /// distance to a bit flip). 0 when the margin analysis was skipped
  /// (kFloat64 requested) or could not enumerate (see f32_rejection()).
  double min_decode_margin() const { return min_decode_margin_; }
  /// Worst-case |f32 accumulation - f64 accumulation| bound over all
  /// detectors and bit assignments (conversion + summation rounding).
  double f32_error_bound() const { return f32_error_bound_; }

  /// Why a kFloat32 request fell back to the double plan; empty when f32
  /// is active or was never requested. Surfaced through PlanCacheStats /
  /// ServiceStats so operators can see which layouts refuse f32.
  const std::string& f32_rejection() const { return f32_rejection_; }

 private:
  void build_f32();

  double freq_tol_ = kDefaultFreqTol;
  Precision requested_ = Precision::kFloat64;
  std::size_t num_channels_ = 0;
  std::size_t num_inputs_ = 0;

  std::vector<std::size_t> det_offsets_;
  std::vector<std::size_t> det_channels_;

  sw::util::AlignedVector<double> re0_;
  sw::util::AlignedVector<double> im0_;
  sw::util::AlignedVector<double> re1_;
  sw::util::AlignedVector<double> im1_;
  sw::util::AlignedVector<std::uint32_t> slots_;
  sw::util::AlignedVector<std::uint32_t> channels_;
  sw::util::AlignedVector<std::uint32_t> inputs_;

  sw::util::AlignedVector<float> re0_f32_;
  sw::util::AlignedVector<float> re1_f32_;
  bool f32_ok_ = false;
  double min_decode_margin_ = 0.0;
  double f32_error_bound_ = 0.0;
  std::string f32_rejection_;
};

}  // namespace sw::wavesim
