// Analytic travelling-wave superposition engine.
//
// Models each transducer as a point source of damped plane waves on a 1-D
// waveguide and evaluates their superposition at arbitrary positions, either
// as steady-state phasors (per frequency) or as time-domain signals with
// group-velocity arrival gating. This is the fast functional model of the
// multi-frequency gate: it captures exactly the physics the paper's logic
// scheme relies on (same-frequency interference, per-frequency isolation,
// phase accumulation k*d, damping decay) at a negligible cost compared to
// the micromagnetic solver, which remains the ground truth.
#pragma once

#include <complex>
#include <mutex>
#include <span>
#include <vector>

#include "dispersion/model.h"

namespace sw::wavesim {

/// Default relative tolerance for deciding that a source and a detection
/// frequency are the same species. Shared by the scalar steady_phasor path
/// and BatchEvaluator so their source selection can never diverge.
inline constexpr double kDefaultFreqTol = 1e-6;

/// One wave source on the guide.
struct WaveSource {
  double x = 0.0;          ///< position [m]
  double frequency = 0.0;  ///< drive frequency [Hz]
  double phase = 0.0;      ///< launch phase [rad] (pi encodes logic 1)
  double amplitude = 1.0;  ///< launch amplitude [arb]
  double t_on = 0.0;       ///< drive start [s]
};

class WaveEngine {
 public:
  /// `model` provides k(f) and group velocity; `alpha` is the Gilbert
  /// damping used for the propagation decay length l = v_g / (alpha * omega).
  WaveEngine(const sw::disp::DispersionModel& model, double alpha);

  /// Amplitude decay length [m] at frequency f.
  double decay_length(double f) const;

  /// Steady-state complex amplitude at position x of the frequency-f
  /// component produced by `sources` (only sources within `freq_tol`
  /// relative frequency contribute — different species do not interact).
  std::complex<double> steady_phasor(std::span<const WaveSource> sources,
                                     double x, double f,
                                     double freq_tol = kDefaultFreqTol) const;

  /// Time-domain signal at (x, t): superposition of all sources, each gated
  /// by its group arrival time and smoothly ramped over one period.
  double signal(std::span<const WaveSource> sources, double x,
                double t) const;

  /// Sampled time series at x over [t0, t1) with step dt.
  std::vector<double> record(std::span<const WaveSource> sources, double x,
                             double t0, double t1, double dt) const;

  /// Latest group-arrival time from any source to position x (plus
  /// `settle_periods` periods of the slowest contributing frequency); use as
  /// the start of a steady-state detection window.
  double settle_time(std::span<const WaveSource> sources, double x,
                     double settle_periods = 5.0) const;

  double alpha() const { return alpha_; }
  const sw::disp::DispersionModel& model() const { return *model_; }

 private:
  struct Cached {
    double k = 0.0;
    double vg = 0.0;
    double decay = 0.0;
  };
  Cached lookup(double f) const;

  const sw::disp::DispersionModel* model_;
  double alpha_ = 0.0;
  // Tiny memoisation table: gates reuse a handful of frequencies heavily.
  // Guarded by cache_mutex_ (and Cached is returned by value), so one
  // engine can back concurrent evaluator-plan builds across threads; a
  // first-touch dispersion solve runs under the lock, which only
  // serialises cold misses on a handful of frequencies.
  mutable std::mutex cache_mutex_;
  mutable std::vector<std::pair<double, Cached>> cache_;
};

}  // namespace sw::wavesim
