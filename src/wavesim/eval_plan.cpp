#include "wavesim/eval_plan.h"

#include <cmath>
#include <complex>
#include <limits>

#include "core/encoding.h"
#include "util/error.h"
#include "wavesim/wave_engine.h"

namespace sw::wavesim {

EvalPlan::EvalPlan(const sw::core::DataParallelGate& gate, double freq_tol)
    : freq_tol_(freq_tol) {
  const auto& layout = gate.layout();
  const auto& engine = gate.engine();
  const auto& freqs = layout.spec.frequencies;
  num_channels_ = freqs.size();
  num_inputs_ = layout.spec.num_inputs;
  SW_REQUIRE(slot_count() <= std::numeric_limits<std::uint32_t>::max(),
             "slot count exceeds the plan's 32-bit slot index range");

  det_offsets_.reserve(layout.detectors.size() + 1);
  det_offsets_.push_back(0);
  det_channels_.reserve(layout.detectors.size());
  for (const auto& det : layout.detectors) {
    const double f = freqs[det.channel];
    // Each contribution is the engine's own steady phasor of that single
    // source driven at phase 0 / pi, appended in scalar source order, so a
    // kernel summing the detector's range in index order reproduces the
    // scalar evaluation bitwise (x + 0 == x keeps skipped sources
    // invisible, but the match check below also keeps the plan compact).
    for (const auto& s : layout.sources) {
      const double sf = freqs[s.channel];
      if (std::abs(sf - f) > freq_tol * f) continue;
      WaveSource src;
      src.x = s.x;
      src.frequency = sf;
      src.amplitude = s.amplitude;
      src.phase = sw::core::kPhaseZero;
      const std::complex<double> zero =
          engine.steady_phasor({&src, 1}, det.x, f, freq_tol);
      src.phase = sw::core::kPhaseOne;
      const std::complex<double> one =
          engine.steady_phasor({&src, 1}, det.x, f, freq_tol);
      re0_.push_back(zero.real());
      im0_.push_back(zero.imag());
      re1_.push_back(one.real());
      im1_.push_back(one.imag());
      slots_.push_back(
          static_cast<std::uint32_t>(s.channel * num_inputs_ + s.input));
      channels_.push_back(static_cast<std::uint32_t>(s.channel));
      inputs_.push_back(static_cast<std::uint32_t>(s.input));
    }
    det_channels_.push_back(det.channel);
    det_offsets_.push_back(re0_.size());
  }
}

}  // namespace sw::wavesim
