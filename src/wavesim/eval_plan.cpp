#include "wavesim/eval_plan.h"

#include <cmath>
#include <complex>
#include <limits>

#include "core/encoding.h"
#include "util/error.h"
#include "wavesim/wave_engine.h"

namespace sw::wavesim {

namespace {

/// Per-detector contribution count above which the exhaustive 2^k
/// validation sweep is refused (2^24 float adds per detector is already
/// ~0.1 s; real layouts sit at k = m, a handful). A detector too wide to
/// validate falls back to f64 rather than trusting the error bound alone.
constexpr std::size_t kMaxValidatedContributions = 24;

/// How much head-room the double-precision decode margin must have over
/// the worst-case f32 accumulation error before f32 is accepted. The
/// paper's layouts clear this by many orders of magnitude; a layout within
/// one order of magnitude of flipping a bit has no business running in
/// single precision even if today's enumeration happens to pass.
constexpr double kMarginSafetyFactor = 8.0;

}  // namespace

EvalPlan::EvalPlan(const sw::core::DataParallelGate& gate, double freq_tol,
                   Precision precision)
    : freq_tol_(freq_tol), requested_(resolve_precision(precision)) {
  const auto& layout = gate.layout();
  const auto& engine = gate.engine();
  const auto& freqs = layout.spec.frequencies;
  num_channels_ = freqs.size();
  num_inputs_ = layout.spec.num_inputs;
  SW_REQUIRE(slot_count() <= std::numeric_limits<std::uint32_t>::max(),
             "slot count exceeds the plan's 32-bit slot index range");

  det_offsets_.reserve(layout.detectors.size() + 1);
  det_offsets_.push_back(0);
  det_channels_.reserve(layout.detectors.size());
  for (const auto& det : layout.detectors) {
    const double f = freqs[det.channel];
    // Each contribution is the engine's own steady phasor of that single
    // source driven at phase 0 / pi, appended in scalar source order, so a
    // kernel summing the detector's range in index order reproduces the
    // scalar evaluation bitwise (x + 0 == x keeps skipped sources
    // invisible, but the match check below also keeps the plan compact).
    for (const auto& s : layout.sources) {
      const double sf = freqs[s.channel];
      if (std::abs(sf - f) > freq_tol * f) continue;
      WaveSource src;
      src.x = s.x;
      src.frequency = sf;
      src.amplitude = s.amplitude;
      src.phase = sw::core::kPhaseZero;
      const std::complex<double> zero =
          engine.steady_phasor({&src, 1}, det.x, f, freq_tol);
      src.phase = sw::core::kPhaseOne;
      const std::complex<double> one =
          engine.steady_phasor({&src, 1}, det.x, f, freq_tol);
      re0_.push_back(zero.real());
      im0_.push_back(zero.imag());
      re1_.push_back(one.real());
      im1_.push_back(one.imag());
      slots_.push_back(
          static_cast<std::uint32_t>(s.channel * num_inputs_ + s.input));
      channels_.push_back(static_cast<std::uint32_t>(s.channel));
      inputs_.push_back(static_cast<std::uint32_t>(s.input));
    }
    det_channels_.push_back(det.channel);
    det_offsets_.push_back(re0_.size());
  }

  if (requested_ == Precision::kFloat32) build_f32();
}

void EvalPlan::build_f32() {
  // A detector's decode depends only on the bits governing its own
  // contributions, so enumerating all 2^k bit assignments per detector
  // covers every input word the plan can ever see. (If two contributions
  // shared a slot the enumeration would visit a superset of the reachable
  // sign patterns — still conservative.) For each assignment the f64 sum
  // gives the true decode margin and a replay of the exact f32 kernel
  // accumulation (constants rounded to float, summed in index order in
  // float) gives the decode f32 would serve. f32 is accepted only if every
  // reachable decode matches AND the smallest margin clears the analytic
  // worst-case error bound with kMarginSafetyFactor of head-room; either
  // test alone would do, together they guard both the enumerated reality
  // and the non-enumerable neighbourhood (e.g. non-canonical bit bytes
  // route through the same sign selection, so no new sums arise).
  constexpr double kEps32 = 1.1920928955078125e-7;  // 2^-23

  double min_margin = std::numeric_limits<double>::infinity();
  double max_bound = 0.0;
  for (std::size_t d = 0; d + 1 < det_offsets_.size(); ++d) {
    const std::size_t begin = det_offsets_[d];
    const std::size_t k = det_offsets_[d + 1] - begin;
    if (k > kMaxValidatedContributions) {
      f32_rejection_ = "detector has too many contributions to validate "
                       "exhaustively; serving the double plan";
      return;
    }
    // Worst-case |float sum - double sum|: each constant rounds once on
    // conversion (<= eps/2 relative) and each of the k-1 adds rounds once
    // (<= eps/2 of a partial sum bounded by the absolute-value sum), so
    // (k + 1) * eps/2 * sum|c| over-covers both with first-order slack
    // absorbed by the safety factor.
    double abs_sum = 0.0;
    for (std::size_t i = begin; i < begin + k; ++i) {
      abs_sum += std::max(std::abs(re0_[i]), std::abs(re1_[i]));
    }
    const double bound =
        0.5 * static_cast<double>(k + 1) * kEps32 * abs_sum;
    max_bound = std::max(max_bound, bound);

    const std::size_t combos = std::size_t{1} << k;
    for (std::size_t bits = 0; bits < combos; ++bits) {
      double sum64 = 0.0;
      float sum32 = 0.0f;
      for (std::size_t i = 0; i < k; ++i) {
        const bool set = (bits >> i) & 1u;
        const double c = set ? re1_[begin + i] : re0_[begin + i];
        sum64 += c;
        sum32 += static_cast<float>(c);
      }
      if ((sum64 < 0.0) != (static_cast<double>(sum32) < 0.0)) {
        f32_rejection_ = "validation sweep found a bit assignment whose f32 "
                         "decode disagrees with the double plan";
        min_decode_margin_ = std::min(min_margin, std::abs(sum64));
        f32_error_bound_ = max_bound;
        return;
      }
      min_margin = std::min(min_margin, std::abs(sum64));
    }
  }

  min_decode_margin_ =
      std::isinf(min_margin) ? 0.0 : min_margin;  // no detectors -> 0
  f32_error_bound_ = max_bound;
  if (min_decode_margin_ < kMarginSafetyFactor * max_bound) {
    f32_rejection_ = "decode margin too thin for f32 accumulation error; "
                     "serving the double plan";
    return;
  }

  re0_f32_.reserve(re0_.size());
  re1_f32_.reserve(re1_.size());
  for (std::size_t i = 0; i < re0_.size(); ++i) {
    re0_f32_.push_back(static_cast<float>(re0_[i]));
    re1_f32_.push_back(static_cast<float>(re1_[i]));
  }
  f32_ok_ = true;
}

}  // namespace sw::wavesim
