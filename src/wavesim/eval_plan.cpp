#include "wavesim/eval_plan.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <numeric>

#include "core/encoding.h"
#include "util/error.h"
#include "wavesim/wave_engine.h"

namespace sw::wavesim {

namespace {

/// Per-detector contribution count above which the exhaustive 2^k
/// validation sweep is refused (2^24 float adds per detector is already
/// ~0.1 s; real layouts sit at k = m, a handful). A detector too wide to
/// validate runs an f64 rescue lane rather than trusting the error bound
/// alone.
constexpr std::size_t kMaxValidatedContributions = 24;

/// How much head-room a detector's double-precision decode margin must
/// have over its worst-case f32 accumulation error before f32 is accepted.
/// The paper's layouts clear this by many orders of magnitude; a detector
/// within one order of magnitude of flipping a bit has no business running
/// in single precision even if today's enumeration happens to pass.
constexpr double kMarginSafetyFactor = 8.0;

}  // namespace

EvalPlan::EvalPlan(const sw::core::DataParallelGate& gate, double freq_tol,
                   Precision precision)
    : freq_tol_(freq_tol), requested_(resolve_precision(precision)) {
  const auto& layout = gate.layout();
  const auto& engine = gate.engine();
  const auto& freqs = layout.spec.frequencies;
  num_channels_ = freqs.size();
  num_inputs_ = layout.spec.num_inputs;
  SW_REQUIRE(slot_count() <= std::numeric_limits<std::uint32_t>::max(),
             "slot count exceeds the plan's 32-bit slot index range");

  det_offsets_.reserve(layout.detectors.size() + 1);
  det_offsets_.push_back(0);
  det_channels_.reserve(layout.detectors.size());
  for (const auto& det : layout.detectors) {
    const double f = freqs[det.channel];
    // Each contribution is the engine's own steady phasor of that single
    // source driven at phase 0 / pi, appended in scalar source order, so a
    // kernel summing the detector's range in index order reproduces the
    // scalar evaluation bitwise (x + 0 == x keeps skipped sources
    // invisible, but the match check below also keeps the plan compact).
    for (const auto& s : layout.sources) {
      const double sf = freqs[s.channel];
      if (std::abs(sf - f) > freq_tol * f) continue;
      WaveSource src;
      src.x = s.x;
      src.frequency = sf;
      src.amplitude = s.amplitude;
      src.phase = sw::core::kPhaseZero;
      const std::complex<double> zero =
          engine.steady_phasor({&src, 1}, det.x, f, freq_tol);
      src.phase = sw::core::kPhaseOne;
      const std::complex<double> one =
          engine.steady_phasor({&src, 1}, det.x, f, freq_tol);
      re0_.push_back(zero.real());
      im0_.push_back(zero.imag());
      re1_.push_back(one.real());
      im1_.push_back(one.imag());
      slots_.push_back(
          static_cast<std::uint32_t>(s.channel * num_inputs_ + s.input));
      channels_.push_back(static_cast<std::uint32_t>(s.channel));
      inputs_.push_back(static_cast<std::uint32_t>(s.input));
    }
    det_channels_.push_back(det.channel);
    det_offsets_.push_back(re0_.size());
  }

  det_results_.resize(det_channels_.size());
  std::iota(det_results_.begin(), det_results_.end(), std::size_t{0});

  if (requested_ == Precision::kFloat32) build_f32();
}

void EvalPlan::build_f32() {
  // A detector's decode depends only on the bits governing its own
  // contributions, so enumerating all 2^k bit assignments per detector
  // covers every input word the plan can ever see. (If two contributions
  // shared a slot the enumeration would visit a superset of the reachable
  // sign patterns — still conservative.) For each assignment the f64 sum
  // gives the true decode margin and a replay of the exact f32 kernel
  // accumulation (constants rounded to float, summed in index order in
  // float) gives the decode f32 would serve. A detector is accepted only
  // if every reachable decode matches AND its smallest margin clears the
  // analytic worst-case error bound with kMarginSafetyFactor of head-room;
  // either test alone would do, together they guard both the enumerated
  // reality and the non-enumerable neighbourhood (e.g. non-canonical bit
  // bytes route through the same sign selection, so no new sums arise).
  //
  // The verdict is per detector. Rejected detectors don't demote the plan:
  // they are moved behind the accepted ones (partition_detectors) and
  // served by f64 rescue lanes, so one thin-margin detector costs its own
  // lane, not the whole layout's f32 speedup.
  constexpr double kEps32 = 1.1920928955078125e-7;  // 2^-23

  const std::size_t nd = num_detectors();
  std::vector<char> accepted(nd, 0);
  double min_margin = std::numeric_limits<double>::infinity();
  double max_bound = 0.0;
  std::string first_reason;
  auto reject = [&](const char* why) {
    if (first_reason.empty()) first_reason = why;
  };

  for (std::size_t d = 0; d < nd; ++d) {
    const std::size_t begin = det_offsets_[d];
    const std::size_t k = det_offsets_[d + 1] - begin;
    if (k > kMaxValidatedContributions) {
      reject("detector has too many contributions to validate exhaustively");
      continue;
    }
    // Worst-case |float sum - double sum|: each constant rounds once on
    // conversion (<= eps/2 relative) and each of the k-1 adds rounds once
    // (<= eps/2 of a partial sum bounded by the absolute-value sum), so
    // (k + 1) * eps/2 * sum|c| over-covers both with first-order slack
    // absorbed by the safety factor.
    double abs_sum = 0.0;
    for (std::size_t i = begin; i < begin + k; ++i) {
      abs_sum += std::max(std::abs(re0_[i]), std::abs(re1_[i]));
    }
    const double bound =
        0.5 * static_cast<double>(k + 1) * kEps32 * abs_sum;
    max_bound = std::max(max_bound, bound);

    double det_margin = std::numeric_limits<double>::infinity();
    bool decode_ok = true;
    const std::size_t combos = std::size_t{1} << k;
    for (std::size_t bits = 0; bits < combos; ++bits) {
      double sum64 = 0.0;
      float sum32 = 0.0f;
      for (std::size_t i = 0; i < k; ++i) {
        const bool set = (bits >> i) & 1u;
        const double c = set ? re1_[begin + i] : re0_[begin + i];
        sum64 += c;
        sum32 += static_cast<float>(c);
      }
      if ((sum64 < 0.0) != (static_cast<double>(sum32) < 0.0)) {
        decode_ok = false;
      }
      det_margin = std::min(det_margin, std::abs(sum64));
    }
    min_margin = std::min(min_margin, det_margin);
    if (!decode_ok) {
      reject("validation sweep found a bit assignment whose f32 decode "
             "disagrees with the double plan");
      continue;
    }
    if (det_margin < kMarginSafetyFactor * bound) {
      reject("decode margin too thin for f32 accumulation error");
      continue;
    }
    accepted[d] = 1;
    ++num_f32_detectors_;
  }

  min_decode_margin_ = std::isinf(min_margin) ? 0.0 : min_margin;
  f32_error_bound_ = max_bound;
  num_rescue_ = nd - num_f32_detectors_;

  if (num_f32_detectors_ == 0) {
    if (num_rescue_ > 0) {
      f32_rejection_ = first_reason + "; serving the double plan";
    }
    return;  // degenerate: exactly the f64 plan (empty-layout case included)
  }
  if (num_rescue_ > 0) {
    partition_detectors(accepted);
    f32_rejection_ = std::to_string(num_rescue_) + " of " +
                     std::to_string(nd) + " detectors rejected (" +
                     first_reason + "); serving f64 rescue lanes for them";
  }

  // Float mirrors over the accepted (now leading) detectors' contributions
  // only — the rescue lanes never read them.
  const std::size_t nf = det_offsets_[num_f32_detectors_];
  re0_f32_.reserve(nf);
  re1_f32_.reserve(nf);
  for (std::size_t i = 0; i < nf; ++i) {
    re0_f32_.push_back(static_cast<float>(re0_[i]));
    re1_f32_.push_back(static_cast<float>(re1_[i]));
  }
}

void EvalPlan::partition_detectors(const std::vector<char>& accepted) {
  // Stable two-run permutation: accepted detectors first, rescued after,
  // each run in original layout order. Rebuilds every detector-indexed and
  // contribution-indexed array in permuted order; det_results_ remembers
  // each plan-order detector's original layout position so result rows
  // never observe the reorder.
  const std::size_t nd = det_channels_.size();
  std::vector<std::size_t> order;
  order.reserve(nd);
  for (std::size_t d = 0; d < nd; ++d) {
    if (accepted[d]) order.push_back(d);
  }
  for (std::size_t d = 0; d < nd; ++d) {
    if (!accepted[d]) order.push_back(d);
  }

  std::vector<std::size_t> offsets;
  std::vector<std::size_t> channels;
  std::vector<std::size_t> results;
  offsets.reserve(nd + 1);
  offsets.push_back(0);
  channels.reserve(nd);
  results.reserve(nd);
  sw::util::AlignedVector<double> re0, im0, re1, im1;
  sw::util::AlignedVector<std::uint32_t> slots, chans, inputs;
  re0.reserve(re0_.size());
  im0.reserve(im0_.size());
  re1.reserve(re1_.size());
  im1.reserve(im1_.size());
  slots.reserve(slots_.size());
  chans.reserve(channels_.size());
  inputs.reserve(inputs_.size());

  for (const std::size_t d : order) {
    const std::size_t begin = det_offsets_[d];
    const std::size_t end = det_offsets_[d + 1];
    for (std::size_t i = begin; i < end; ++i) {
      re0.push_back(re0_[i]);
      im0.push_back(im0_[i]);
      re1.push_back(re1_[i]);
      im1.push_back(im1_[i]);
      slots.push_back(slots_[i]);
      chans.push_back(channels_[i]);
      inputs.push_back(inputs_[i]);
    }
    channels.push_back(det_channels_[d]);
    results.push_back(det_results_[d]);
    offsets.push_back(re0.size());
  }

  det_offsets_ = std::move(offsets);
  det_channels_ = std::move(channels);
  det_results_ = std::move(results);
  re0_ = std::move(re0);
  im0_ = std::move(im0);
  re1_ = std::move(re1);
  im1_ = std::move(im1);
  slots_ = std::move(slots);
  channels_ = std::move(chans);
  inputs_ = std::move(inputs);
}

std::string EvalPlan::precision_label() const {
  if (has_f32()) return "f32";
  if (!is_block()) return "f64";
  return "block-f32(" + std::to_string(num_f32_detectors_) + "/" +
         std::to_string(num_detectors()) + ")";
}

}  // namespace sw::wavesim
