#include "wavesim/eval_program.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <utility>

#include "util/error.h"

namespace sw::wavesim {

namespace {

/// Words per fused sub-block: sized so one block's slot matrix plus every
/// stage's output bits stay within L2 while still amortising the per-stage
/// kernel call over enough words for the SIMD lanes to matter.
constexpr std::size_t kBlockWords = 1024;

std::uint64_t stage_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::size_t ProgramSpec::depth() const {
  std::vector<std::size_t> d(stages.size(), 0);
  for (std::size_t s = 0; s < stages.size(); ++s) {
    std::size_t fanin = 0;
    for (const SlotSource& src : stages[s].sources) {
      if (src.kind == SlotSource::Kind::kStage) {
        fanin = std::max(fanin, d[src.stage]);
      }
    }
    d[s] = fanin + 1;
  }
  return d.empty() ? 0 : d.back();
}

void ProgramSpec::validate() const {
  SW_REQUIRE(!stages.empty(), "program needs at least one stage");
  SW_REQUIRE(num_primary_inputs >= 1,
             "program needs at least one primary input");
  const std::size_t n = stages.front().gate.frequencies.size();
  SW_REQUIRE(n >= 1, "program stages need at least one channel");
  const std::size_t primary_slots = num_primary_inputs * n;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const StageSpec& st = stages[s];
    SW_REQUIRE(st.gate.frequencies.size() == n,
               "every stage must share the program's channel count");
    SW_REQUIRE(st.gate.num_inputs >= 1, "stage gate needs inputs");
    SW_REQUIRE(st.sources.size() == st.gate.num_inputs * n,
               "stage sources must cover num_inputs x num_channels slots");
    for (const SlotSource& src : st.sources) {
      switch (src.kind) {
        case SlotSource::Kind::kZero:
        case SlotSource::Kind::kOne:
          break;
        case SlotSource::Kind::kPrimary:
          SW_REQUIRE(src.index < primary_slots,
                     "slot source reads past the primary matrix");
          break;
        case SlotSource::Kind::kStage:
          SW_REQUIRE(src.stage < s,
                     "slot source must reference a strictly earlier stage");
          SW_REQUIRE(src.index < n,
                     "slot source reads past the stage's channels");
          break;
        default:
          throw sw::util::Error("unknown slot source kind");
      }
    }
  }
}

EvalProgram::EvalProgram(ProgramSpec spec,
                         const sw::core::InlineGateDesigner& designer,
                         const WaveEngine& engine, BatchOptions options)
    : spec_(std::move(spec)), pool_(options.num_threads) {
  spec_.validate();
  options.precision = resolve_precision(options.precision);
  stages_.reserve(spec_.stages.size());
  for (const StageSpec& st : spec_.stages) {
    Stage stage;
    stage.gate = std::make_unique<sw::core::DataParallelGate>(
        designer.design(st.gate), engine);
    stage.plan = std::make_shared<const EvalPlan>(
        *stage.gate, options.freq_tol, options.precision);
    max_slots_ = std::max(max_slots_, stage.plan->slot_count());
    stages_.push_back(std::move(stage));
  }
  depth_ = spec_.depth();
}

std::string EvalProgram::precision_label() const {
  std::string first = stages_.front().plan->precision_label();
  bool uniform = true;
  for (const Stage& stage : stages_) {
    if (stage.plan->precision_label() != first) {
      uniform = false;
      break;
    }
  }
  if (uniform) return first;
  std::string label = "mixed(";
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    if (s > 0) label += ",";
    label += stages_[s].plan->precision_label();
  }
  label += ")";
  return label;
}

void EvalProgram::eval_range(const kernels::Kernel& kernel,
                             std::span<const std::uint8_t> bits,
                             std::size_t begin, std::size_t end,
                             std::vector<std::uint8_t>& slot_scratch,
                             std::vector<std::uint8_t>& stage_bits,
                             StageTimings* timings) const {
  const std::size_t block = end - begin;
  const std::size_t n = num_channels();
  const std::size_t prim = num_primary_slots();
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const std::uint64_t stage_start = timings ? stage_clock_ns() : 0;
    const EvalPlan& plan = *stages_[s].plan;
    const auto& sources = spec_.stages[s].sources;
    const std::size_t slots = plan.slot_count();
    // Gather: re-encode this stage's drive bits from constants, primary
    // columns and earlier stages' decoded verdicts. A negated source is
    // one XOR — the physical drive-phase flip costs nothing here either.
    for (std::size_t w = 0; w < block; ++w) {
      std::uint8_t* row = slot_scratch.data() + w * slots;
      const std::uint8_t* prim_row = bits.data() + (begin + w) * prim;
      for (std::size_t j = 0; j < slots; ++j) {
        const SlotSource& src = sources[j];
        std::uint8_t v = 0;
        switch (src.kind) {
          case SlotSource::Kind::kZero:
            v = 0;
            break;
          case SlotSource::Kind::kOne:
            v = 1;
            break;
          case SlotSource::Kind::kPrimary:
            v = prim_row[src.index] != 0 ? 1 : 0;
            break;
          case SlotSource::Kind::kStage:
            v = stage_bits[src.stage * block * n + w * n + src.index];
            break;
        }
        row[j] = v ^ static_cast<std::uint8_t>(src.negated ? 1 : 0);
      }
    }
    // Decode through the stage plan's own precision verdicts — the same
    // three-way dispatch as BatchEvaluator::evaluate_bits, per stage.
    std::uint8_t* out = stage_bits.data() + s * block * n;
    if (plan.has_f32()) {
      kernel.eval_bits_f32(plan, slot_scratch.data(), 0, block, out);
    } else if (plan.is_block()) {
      kernel.eval_bits_mixed(plan, slot_scratch.data(), 0, block, out);
    } else {
      kernel.eval_bits(plan, slot_scratch.data(), 0, block, out);
    }
    if (timings) {
      timings->ns[s].fetch_add(stage_clock_ns() - stage_start,
                               std::memory_order_relaxed);
    }
  }
}

std::vector<std::uint8_t> EvalProgram::evaluate_impl(
    std::size_t num_words, std::span<const std::uint8_t> bits,
    const kernels::Kernel& kernel, bool all_stages,
    StageTimings* timings) const {
  SW_REQUIRE(timings == nullptr || timings->ns.size() == stages_.size(),
             "stage timings must be sized num_stages");
  const std::size_t prim = num_primary_slots();
  const std::size_t n = num_channels();
  const std::size_t num_stages = stages_.size();
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  SW_REQUIRE(prim == 0 || num_words <= kMax / prim,
             "num_words x primary_slot_count overflows size_t");
  SW_REQUIRE(bits.size() == num_words * prim,
             "packed primary matrix must be num_words x primary_slot_count");
  SW_REQUIRE(num_words <= kMax / (num_stages * n),
             "num_words x stage output count overflows size_t");

  const std::size_t out_cols = all_stages ? num_stages * n : n;
  std::vector<std::uint8_t> result(num_words * out_cols);
  pool_.parallel_for(num_words, [&](std::size_t chunk_begin,
                                    std::size_t chunk_end) {
    const std::size_t scratch_words =
        std::min(kBlockWords, chunk_end - chunk_begin);
    std::vector<std::uint8_t> slot_scratch(max_slots_ * scratch_words);
    std::vector<std::uint8_t> stage_bits(num_stages * n * scratch_words);
    for (std::size_t begin = chunk_begin; begin < chunk_end;
         begin += kBlockWords) {
      const std::size_t end = std::min(begin + kBlockWords, chunk_end);
      const std::size_t block = end - begin;
      eval_range(kernel, bits, begin, end, slot_scratch, stage_bits,
                 timings);
      if (all_stages) {
        for (std::size_t w = 0; w < block; ++w) {
          std::uint8_t* dst = result.data() + (begin + w) * out_cols;
          for (std::size_t s = 0; s < num_stages; ++s) {
            std::memcpy(dst + s * n,
                        stage_bits.data() + s * block * n + w * n, n);
          }
        }
      } else {
        std::memcpy(result.data() + begin * n,
                    stage_bits.data() + (num_stages - 1) * block * n,
                    block * n);
      }
    }
  });
  return result;
}

std::vector<std::uint8_t> EvalProgram::evaluate_bits(
    std::size_t num_words, std::span<const std::uint8_t> bits) const {
  return evaluate_impl(num_words, bits, kernels::active_kernel(), false,
                       nullptr);
}

std::vector<std::uint8_t> EvalProgram::evaluate_bits(
    std::size_t num_words, std::span<const std::uint8_t> bits,
    const kernels::Kernel& kernel) const {
  return evaluate_impl(num_words, bits, kernel, false, nullptr);
}

std::vector<std::uint8_t> EvalProgram::evaluate_bits(
    std::size_t num_words, std::span<const std::uint8_t> bits,
    StageTimings* timings) const {
  return evaluate_impl(num_words, bits, kernels::active_kernel(), false,
                       timings);
}

std::vector<std::uint8_t> EvalProgram::evaluate_all_bits(
    std::size_t num_words, std::span<const std::uint8_t> bits) const {
  return evaluate_impl(num_words, bits, kernels::active_kernel(), true,
                       nullptr);
}

std::vector<std::uint8_t> EvalProgram::evaluate_all_bits(
    std::size_t num_words, std::span<const std::uint8_t> bits,
    const kernels::Kernel& kernel) const {
  return evaluate_impl(num_words, bits, kernel, true, nullptr);
}

}  // namespace sw::wavesim
