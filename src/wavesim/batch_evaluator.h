// Batched gate evaluation: many input words through one gate layout.
//
// The scalar path (DataParallelGate::evaluate) recomputes, for every word,
// the per-source dispersion lookups and the exp/cos/sin of each source's
// propagated phasor — yet none of that depends on the input bits. For a
// fixed layout the contribution of source j to detector d is one of exactly
// two complex constants (launch phase 0 or pi). BatchEvaluator is the thin
// orchestrator over that observation: the frozen constants live in a SoA
// EvalPlan (eval_plan.h), every per-word path — the packed evaluate_bits
// decode *and* the full ChannelResult evaluate/evaluate_with paths — runs
// in a runtime-dispatched kernel (kernels/kernel.h — scalar reference,
// AVX2 or AVX-512, SW_EVAL_KERNEL overrides), and the word batch fans
// across a ThreadPool. Decoded results are bit-for-bit identical to the
// scalar path: the plan's constants are produced by the same arithmetic,
// and every kernel preserves the scalar per-detector accumulation order
// word by word.
//
// Precision: BatchOptions::precision (default kAuto -> SW_EVAL_PRECISION /
// f64) asks for the single-precision plan variant on the packed
// evaluate_bits path — twice the words per register — which the plan
// grants *per detector* after its build-time margin analysis proves no
// decode can flip (see EvalPlan): all proved runs the pure f32 kernel
// entry, a mix runs the block-f32 entry (f32 for the proved run, f64
// rescue lanes for the rest), none proved transparently runs the double
// arrays and effective_precision() says so. The ChannelResult paths always
// accumulate in double: phase/amplitude/margin are analog readouts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/gate.h"
#include "util/thread_pool.h"
#include "wavesim/eval_plan.h"
#include "wavesim/kernels/kernel.h"
#include "wavesim/precision.h"

namespace sw::wavesim {

/// Worker count for a one-shot evaluation of `num_words` words: resolves 0
/// to hardware concurrency, then clamps so a small batch does not pay the
/// spawn/join cost of workers that would never receive a chunk.
std::size_t clamp_batch_threads(std::size_t num_threads,
                                std::size_t num_words);

struct BatchOptions {
  /// Worker count; 0 selects std::thread::hardware_concurrency().
  std::size_t num_threads = 0;
  /// Relative frequency tolerance for source/detector matching; defaults
  /// to the scalar path's tolerance, which bit-exact equivalence requires.
  double freq_tol = kDefaultFreqTol;
  /// Requested evaluation precision for the packed evaluate_bits path.
  /// kAuto defers to SW_EVAL_PRECISION (default f64); kFloat32 is granted
  /// per layout by the plan's margin analysis, else falls back to f64.
  Precision precision = Precision::kAuto;
};

class BatchEvaluator {
 public:
  /// Builds the EvalPlan from the gate's layout. The gate (and its engine)
  /// must outlive the evaluator. The engine is only consulted during plan
  /// construction, never in the per-word hot loop, so the evaluate* methods
  /// of a constructed evaluator are safe to call concurrently. Construction
  /// is thread-safe too: the engine's memoisation cache is mutex-guarded,
  /// so several threads may build evaluators (or call the gates' one-shot
  /// evaluate_batch hooks) against one shared WaveEngine.
  explicit BatchEvaluator(const sw::core::DataParallelGate& gate,
                          BatchOptions options = {});

  /// Adopts an already-built plan instead of rebuilding it — the serve
  /// layer's route: PlanCache constructs the plan once per (layout,
  /// precision) and every evaluator (and request) for that layout shares
  /// it. The plan must have been built from this gate's layout with
  /// options.freq_tol and options.precision.
  BatchEvaluator(const sw::core::DataParallelGate& gate,
                 std::shared_ptr<const EvalPlan> plan,
                 BatchOptions options = {});

  const sw::core::DataParallelGate& gate() const { return *gate_; }
  /// The frozen SoA plan the kernels evaluate against.
  const EvalPlan& plan() const { return *plan_; }
  std::size_t num_threads() const { return pool_.size(); }
  /// Precision the packed path actually runs (kFloat64 when a kFloat32
  /// request fell back; see EvalPlan::f32_rejection() for why).
  Precision effective_precision() const {
    return plan_->effective_precision();
  }

  /// Evaluate a batch of input assignments; element w has the same shape as
  /// the argument of DataParallelGate::evaluate (one m-bit vector per
  /// channel). Returns one result vector per word, in batch order.
  std::vector<std::vector<sw::core::ChannelResult>> evaluate(
      std::span<const std::vector<sw::core::Bits>> batch) const;

  /// Evaluate uniform patterns: word w applies patterns[w] to every channel
  /// (the truth-table sweep case).
  std::vector<std::vector<sw::core::ChannelResult>> evaluate_uniform(
      std::span<const sw::core::Bits> patterns) const;

  /// Generic entry point: the bit of input slot `input` on channel
  /// `channel` for word `word` is provided by `bit`. Lets callers (e.g.
  /// ParallelLogicGate) evaluate large batches without materialising
  /// per-word input vectors. The accessor is consulted once per (word,
  /// plan contribution) to pack the kernel's bit matrix — a (channel,
  /// input) pair feeding several detectors is read once per contribution,
  /// with identical values — and never in the inner accumulation loop.
  using BitAccessor = std::function<std::uint8_t(
      std::size_t word, std::size_t channel, std::size_t input)>;
  std::vector<std::vector<sw::core::ChannelResult>> evaluate_with(
      std::size_t num_words, const BitAccessor& bit) const;

  /// Input slots per word for the packed path: one per (channel, input).
  std::size_t slot_count() const { return plan_->slot_count(); }

  /// Fastest path, decoding only the logic bits via the active kernel.
  /// `bits` is a row-major num_words x slot_count() matrix; the bit of
  /// input slot `input` on channel `channel` lives at column
  /// channel * num_inputs + input. Returns a row-major num_words x
  /// channel-count matrix of decoded output bits. The decode is exactly
  /// decide_phase's threshold (phase closer to pi than to 0, i.e. Re < 0)
  /// without the polar conversion, so bits match the ChannelResult paths
  /// bit-for-bit — including on an f32 plan, whose build-time validation
  /// guarantees the float decode never disagrees. Rejects a `bits` span
  /// whose size is not num_words * slot_count(), including when that
  /// product would overflow size_t.
  std::vector<std::uint8_t> evaluate_bits(
      std::size_t num_words, std::span<const std::uint8_t> bits) const;

  /// Same, through an explicit kernel (tests and benches compare kernels
  /// side by side; production callers use the active-kernel overload).
  std::vector<std::uint8_t> evaluate_bits(
      std::size_t num_words, std::span<const std::uint8_t> bits,
      const kernels::Kernel& kernel) const;

 private:
  template <typename BitFn>
  std::vector<std::vector<sw::core::ChannelResult>> run(std::size_t num_words,
                                                        const BitFn& bit) const;

  const sw::core::DataParallelGate* gate_;
  std::shared_ptr<const EvalPlan> plan_;
  mutable sw::util::ThreadPool pool_;
};

}  // namespace sw::wavesim
