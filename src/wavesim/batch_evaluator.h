// Batched gate evaluation: many input words through one gate layout.
//
// The scalar path (DataParallelGate::evaluate) recomputes, for every word,
// the per-source dispersion lookups and the exp/cos/sin of each source's
// propagated phasor — yet none of that depends on the input bits. For a
// fixed layout the contribution of source j to detector d is one of exactly
// two complex constants (launch phase 0 or pi). BatchEvaluator precomputes
// both constants for every (detector, source) pair once, so evaluating a
// word collapses to a handful of complex additions, and fans the word batch
// across a ThreadPool. Decoded results are bit-for-bit identical to the
// scalar path: the precomputed constants are produced by the same
// arithmetic, and per-detector accumulation preserves the scalar source
// order.
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/gate.h"
#include "util/thread_pool.h"

namespace sw::wavesim {

/// Worker count for a one-shot evaluation of `num_words` words: resolves 0
/// to hardware concurrency, then clamps so a small batch does not pay the
/// spawn/join cost of workers that would never receive a chunk.
std::size_t clamp_batch_threads(std::size_t num_threads,
                                std::size_t num_words);

struct BatchOptions {
  /// Worker count; 0 selects std::thread::hardware_concurrency().
  std::size_t num_threads = 0;
  /// Relative frequency tolerance for source/detector matching; defaults
  /// to the scalar path's tolerance, which bit-exact equivalence requires.
  double freq_tol = kDefaultFreqTol;
};

class BatchEvaluator {
 public:
  /// Precomputes the evaluation plan from the gate's layout. The gate (and
  /// its engine) must outlive the evaluator. The engine is only consulted
  /// here, never in the per-word hot loop, so the evaluate* methods of a
  /// constructed evaluator are safe to call concurrently. Construction is
  /// thread-safe too: the engine's memoisation cache is mutex-guarded, so
  /// several threads may build evaluators (or call the gates' one-shot
  /// evaluate_batch hooks) against one shared WaveEngine.
  explicit BatchEvaluator(const sw::core::DataParallelGate& gate,
                          BatchOptions options = {});

  const sw::core::DataParallelGate& gate() const { return *gate_; }
  std::size_t num_threads() const { return pool_.size(); }

  /// Evaluate a batch of input assignments; element w has the same shape as
  /// the argument of DataParallelGate::evaluate (one m-bit vector per
  /// channel). Returns one result vector per word, in batch order.
  std::vector<std::vector<sw::core::ChannelResult>> evaluate(
      std::span<const std::vector<sw::core::Bits>> batch) const;

  /// Evaluate uniform patterns: word w applies patterns[w] to every channel
  /// (the truth-table sweep case).
  std::vector<std::vector<sw::core::ChannelResult>> evaluate_uniform(
      std::span<const sw::core::Bits> patterns) const;

  /// Generic entry point: the bit of input slot `input` on channel
  /// `channel` for word `word` is provided by `bit`. Lets callers (e.g.
  /// ParallelLogicGate) evaluate large batches without materialising
  /// per-word input vectors.
  using BitAccessor = std::function<std::uint8_t(
      std::size_t word, std::size_t channel, std::size_t input)>;
  std::vector<std::vector<sw::core::ChannelResult>> evaluate_with(
      std::size_t num_words, const BitAccessor& bit) const;

  /// Input slots per word for the packed path: one per (channel, input).
  std::size_t slot_count() const;

  /// Fastest path, decoding only the logic bits. `bits` is a row-major
  /// num_words x slot_count() matrix; the bit of input slot `input` on
  /// channel `channel` lives at column channel * num_inputs + input.
  /// Returns a row-major num_words x channel-count matrix of decoded
  /// output bits. The decode is exactly decide_phase's threshold (phase
  /// closer to pi than to 0, i.e. Re < 0) without the polar conversion, so
  /// bits match the ChannelResult paths bit-for-bit.
  std::vector<std::uint8_t> evaluate_bits(
      std::size_t num_words, std::span<const std::uint8_t> bits) const;

 private:
  /// One source's two possible phasor contributions at one detector.
  struct Contribution {
    std::size_t channel = 0;  ///< input word indexing: which channel's bits
    std::size_t input = 0;    ///< ... and which bit within the channel
    std::size_t slot = 0;     ///< flat column channel * num_inputs + input
    std::complex<double> zero;  ///< contribution when the bit is 0
    std::complex<double> one;   ///< contribution when the bit is 1
  };
  struct DetectorPlan {
    std::size_t channel = 0;
    std::vector<Contribution> contributions;  ///< scalar source order
  };

  template <typename BitFn>
  std::vector<std::vector<sw::core::ChannelResult>> run(std::size_t num_words,
                                                        const BitFn& bit) const;

  const sw::core::DataParallelGate* gate_;
  std::vector<DetectorPlan> plans_;
  mutable sw::util::ThreadPool pool_;
};

}  // namespace sw::wavesim
