#include "wavesim/wave_engine.h"

#include <cmath>
#include <limits>

#include "util/constants.h"
#include "util/error.h"

namespace sw::wavesim {

using sw::util::kTwoPi;

WaveEngine::WaveEngine(const sw::disp::DispersionModel& model, double alpha)
    : model_(&model), alpha_(alpha) {
  SW_REQUIRE(alpha >= 0.0, "alpha must be non-negative");
}

WaveEngine::Cached WaveEngine::lookup(double f) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  for (const auto& entry : cache_) {
    if (entry.first == f) return entry.second;
  }
  Cached c;
  c.k = model_->k_from_frequency(f);
  c.vg = model_->group_velocity(c.k);
  SW_REQUIRE(c.vg > 0.0, "non-positive group velocity at this frequency");
  c.decay = (alpha_ > 0.0) ? c.vg / (alpha_ * kTwoPi * f)
                           : std::numeric_limits<double>::infinity();
  cache_.emplace_back(f, c);
  return c;
}

double WaveEngine::decay_length(double f) const { return lookup(f).decay; }

std::complex<double> WaveEngine::steady_phasor(
    std::span<const WaveSource> sources, double x, double f,
    double freq_tol) const {
  std::complex<double> acc{0.0, 0.0};
  for (const auto& s : sources) {
    if (std::abs(s.frequency - f) > freq_tol * f) continue;
    const Cached& c = lookup(s.frequency);
    const double d = std::abs(x - s.x);
    const double a = s.amplitude * std::exp(-d / c.decay);
    const double ph = s.phase - c.k * d;
    acc += std::complex<double>(a * std::cos(ph), a * std::sin(ph));
  }
  return acc;
}

double WaveEngine::signal(std::span<const WaveSource> sources, double x,
                          double t) const {
  double acc = 0.0;
  for (const auto& s : sources) {
    const Cached& c = lookup(s.frequency);
    const double d = std::abs(x - s.x);
    const double t_arrive = s.t_on + d / c.vg;
    if (t <= t_arrive) continue;
    const double period = 1.0 / s.frequency;
    // Smooth one-period front so the onset is not a step discontinuity.
    double env = (t - t_arrive) / period;
    env = (env >= 1.0) ? 1.0 : env;
    const double a = s.amplitude * std::exp(-d / c.decay) * env;
    acc += a * std::cos(kTwoPi * s.frequency * (t - s.t_on) + s.phase -
                        c.k * d);
  }
  return acc;
}

std::vector<double> WaveEngine::record(std::span<const WaveSource> sources,
                                       double x, double t0, double t1,
                                       double dt) const {
  SW_REQUIRE(t1 > t0 && dt > 0.0, "bad recording window");
  const std::size_t n = static_cast<std::size_t>((t1 - t0) / dt);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = signal(sources, x, t0 + static_cast<double>(i) * dt);
  }
  return out;
}

double WaveEngine::settle_time(std::span<const WaveSource> sources, double x,
                               double settle_periods) const {
  double t = 0.0;
  double slowest_period = 0.0;
  for (const auto& s : sources) {
    const Cached& c = lookup(s.frequency);
    const double d = std::abs(x - s.x);
    t = std::max(t, s.t_on + d / c.vg);
    slowest_period = std::max(slowest_period, 1.0 / s.frequency);
  }
  return t + settle_periods * slowest_period;
}

}  // namespace sw::wavesim
