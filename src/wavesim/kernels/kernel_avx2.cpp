// AVX2 kernel: four words per __m256d (eight per __m256 in f32), one word
// per lane.
//
// Bit-exactness argument: vectorising *across words* (not across a
// detector's contributions) keeps each lane's accumulation in exactly the
// scalar order — lane l performs the same additions on the same constants
// in the same sequence as the scalar kernel would for word l — so every
// lane's sum is bitwise identical to the scalar sum and no word can decode
// differently, not even one sitting within an ulp of the threshold. The
// per-group cost beyond the adds is one mask transpose of the group's
// input slots and a blend per contribution. The same argument covers every
// entry point: eval_bits (4 x f64), eval_bits_f32 (8 x f32 — twice the
// words per register and half the constant traffic, which is the whole
// point of the f32 plan), eval_bits_mixed (one fused pass running the f32
// detectors at 8 x f32 and the rescue detectors at 4 x f64 over the same
// lane masks) and eval_channels (4 x f64
// complex accumulation, then the scalar decide_phase per lane so
// phase/amplitude/margin match the gate path bitwise).
//
// The bit passes take a detector range so the block-f32 path can run the
// f32 pass over the proved run and the f64 pass over the rescue run
// without a per-detector precision branch; their odd-word tails fall to
// the scalar range helpers, which decode the same sub-range only.
//
// This translation unit is compiled with -mavx2 (CMake adds the flag only
// for this file when the compiler supports it and the target is x86); every
// other TU stays portable, and nothing in this TU executes — not even the
// candidate getter's would-be static init — unless the CPUID check in
// dispatch.cpp (a portable TU) confirmed the host runs AVX2 first, or the
// getter itself, which is a bare constant return, is called.
#include "wavesim/kernels/kernel.h"

#if defined(SWLOGIC_EVAL_AVX2) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <complex>

#include "core/detector.h"
#include "core/encoding.h"
#include "core/gate.h"
#include "util/aligned.h"
#include "wavesim/eval_plan.h"

namespace sw::wavesim::kernels {

namespace {

/// Lane-mask scratch for the current word group: one vector register's
/// worth of per-slot select masks, stored as raw bytes (vector<__m256d>
/// trips -Wignored-attributes). Small strides (every gate in the paper:
/// 8 channels x 3 inputs = 24) use the stack so the serving hot path does
/// not pay an aligned heap round-trip per call.
constexpr std::size_t kStackSlots = 64;

void eval_bits_avx2_range(const EvalPlan& plan, const std::uint8_t* bits,
                          std::size_t begin, std::size_t end,
                          std::uint8_t* out, std::size_t d_begin,
                          std::size_t d_end) {
  const auto offsets = plan.detector_offsets();
  const auto det_channel = plan.detector_channels();
  const auto re0 = plan.re0();
  const auto re1 = plan.re1();
  const auto slots = plan.slots();
  const std::size_t stride = plan.slot_count();
  const std::size_t channels = plan.num_channels();

  // Lane masks, one __m256d (four doubles) per input slot: lane l of mask
  // s has its sign bit set iff word l's bit at slot s is 1 (vblendvpd
  // selects on the sign bit alone). Transposed once per group, reused by
  // every detector range.
  alignas(32) double stack_masks[kStackSlots * 4];
  sw::util::AlignedVector<double, 32> heap_masks;
  double* masks_data = stack_masks;
  if (stride > kStackSlots) {
    heap_masks.resize(stride * 4);
    masks_data = heap_masks.data();
  }

  std::size_t w = begin;
  for (; w + 4 <= end; w += 4) {
    const std::uint8_t* w0 = bits + (w + 0) * stride;
    const std::uint8_t* w1 = bits + (w + 1) * stride;
    const std::uint8_t* w2 = bits + (w + 2) * stride;
    const std::uint8_t* w3 = bits + (w + 3) * stride;
    const auto sign_bit = [](std::uint8_t b) {
      // b != 0, not bit 0: the scalar kernel treats any nonzero byte as a
      // set bit, and the kernels must agree on every input. Unsigned
      // shift, then modular conversion (C++20), for the 0x8000.. pattern.
      return static_cast<long long>(static_cast<std::uint64_t>(b != 0) << 63);
    };
    for (std::size_t s = 0; s < stride; ++s) {
      _mm256_store_pd(
          masks_data + 4 * s,
          _mm256_castsi256_pd(_mm256_setr_epi64x(sign_bit(w0[s]),
                                                 sign_bit(w1[s]),
                                                 sign_bit(w2[s]),
                                                 sign_bit(w3[s]))));
    }

    std::uint8_t* r0 = out + (w + 0) * channels;
    std::uint8_t* r1 = out + (w + 1) * channels;
    std::uint8_t* r2 = out + (w + 2) * channels;
    std::uint8_t* r3 = out + (w + 3) * channels;
    for (std::size_t d = d_begin; d < d_end; ++d) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
        const __m256d zero = _mm256_broadcast_sd(&re0[i]);
        const __m256d one = _mm256_broadcast_sd(&re1[i]);
        const __m256d mask = _mm256_load_pd(masks_data + 4 * slots[i]);
        acc = _mm256_add_pd(acc, _mm256_blendv_pd(zero, one, mask));
      }
      // An ordered < 0.0 compare, not the raw sign bit: a -0.0 sum must
      // decode as 0 exactly like the scalar kernel's `acc < 0.0`.
      const int neg = _mm256_movemask_pd(
          _mm256_cmp_pd(acc, _mm256_setzero_pd(), _CMP_LT_OQ));
      const std::size_t c = det_channel[d];
      r0[c] = static_cast<std::uint8_t>(neg & 1);
      r1[c] = static_cast<std::uint8_t>((neg >> 1) & 1);
      r2[c] = static_cast<std::uint8_t>((neg >> 2) & 1);
      r3[c] = static_cast<std::uint8_t>((neg >> 3) & 1);
    }
  }
  // Remainder tail (< 4 words): the scalar reference, which is what the
  // vector lanes reproduce anyway.
  if (w < end) {
    detail::eval_bits_scalar_range(plan, bits, w, end, out, d_begin, d_end);
  }
}

void eval_bits_f32_avx2_range(const EvalPlan& plan, const std::uint8_t* bits,
                              std::size_t begin, std::size_t end,
                              std::uint8_t* out, std::size_t d_begin,
                              std::size_t d_end) {
  const auto offsets = plan.detector_offsets();
  const auto det_channel = plan.detector_channels();
  const auto re0 = plan.re0_f32();
  const auto re1 = plan.re1_f32();
  const auto slots = plan.slots();
  const std::size_t stride = plan.slot_count();
  const std::size_t channels = plan.num_channels();

  // Eight 32-bit lanes per mask: lane l's sign bit set iff word l's bit at
  // that slot is 1 (vblendvps, like vblendvpd, keys on the sign bit).
  alignas(32) float stack_masks[kStackSlots * 8];
  sw::util::AlignedVector<float, 32> heap_masks;
  float* masks_data = stack_masks;
  if (stride > kStackSlots) {
    heap_masks.resize(stride * 8);
    masks_data = heap_masks.data();
  }

  const std::uint8_t* words[8];
  std::uint8_t* rows[8];
  std::size_t w = begin;
  for (; w + 8 <= end; w += 8) {
    for (std::size_t l = 0; l < 8; ++l) {
      words[l] = bits + (w + l) * stride;
      rows[l] = out + (w + l) * channels;
    }
    const auto sign_bit = [](std::uint8_t b) {
      return static_cast<int>(static_cast<std::uint32_t>(b != 0) << 31);
    };
    for (std::size_t s = 0; s < stride; ++s) {
      _mm256_store_ps(
          masks_data + 8 * s,
          _mm256_castsi256_ps(_mm256_setr_epi32(
              sign_bit(words[0][s]), sign_bit(words[1][s]),
              sign_bit(words[2][s]), sign_bit(words[3][s]),
              sign_bit(words[4][s]), sign_bit(words[5][s]),
              sign_bit(words[6][s]), sign_bit(words[7][s]))));
    }

    for (std::size_t d = d_begin; d < d_end; ++d) {
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
        const __m256 zero = _mm256_broadcast_ss(&re0[i]);
        const __m256 one = _mm256_broadcast_ss(&re1[i]);
        const __m256 mask = _mm256_load_ps(masks_data + 8 * slots[i]);
        acc = _mm256_add_ps(acc, _mm256_blendv_ps(zero, one, mask));
      }
      const int neg = _mm256_movemask_ps(
          _mm256_cmp_ps(acc, _mm256_setzero_ps(), _CMP_LT_OQ));
      const std::size_t c = det_channel[d];
      for (std::size_t l = 0; l < 8; ++l) {
        rows[l][c] = static_cast<std::uint8_t>((neg >> l) & 1);
      }
    }
  }
  // Remainder tail (< 8 words): the f32 scalar reference — identical float
  // accumulation order, so the tail cannot decode differently.
  if (w < end) {
    detail::eval_bits_f32_scalar_range(plan, bits, w, end, out, d_begin,
                                       d_end);
  }
}

void eval_bits_avx2(const EvalPlan& plan, const std::uint8_t* bits,
                    std::size_t begin, std::size_t end, std::uint8_t* out) {
  eval_bits_avx2_range(plan, bits, begin, end, out, 0, plan.num_detectors());
}

void eval_bits_f32_avx2(const EvalPlan& plan, const std::uint8_t* bits,
                        std::size_t begin, std::size_t end,
                        std::uint8_t* out) {
  eval_bits_f32_avx2_range(plan, bits, begin, end, out, 0,
                           plan.num_detectors());
}

void eval_bits_mixed_avx2(const EvalPlan& plan, const std::uint8_t* bits,
                          std::size_t begin, std::size_t end,
                          std::uint8_t* out) {
  // Fused single pass per 8-word group: the f32-width lane masks are built
  // once and serve BOTH precision runs. The f32 run consumes them whole;
  // the f64 rescue run sign-extends each 4-lane half to doubles on the fly
  // (vpmovsxdq keeps the sign bit, which is all vblendvpd reads). Composing
  // the two range kernels instead would re-read the packed words and
  // transpose masks once per precision — with few rescue detectors that
  // second stride-proportional pass costs more than the f32 run saves.
  const auto offsets = plan.detector_offsets();
  const auto det_channel = plan.detector_channels();
  const auto re0f = plan.re0_f32();
  const auto re1f = plan.re1_f32();
  const auto re0 = plan.re0();
  const auto re1 = plan.re1();
  const auto slots = plan.slots();
  const std::size_t stride = plan.slot_count();
  const std::size_t channels = plan.num_channels();
  const std::size_t kf = plan.num_f32_detectors();
  const std::size_t nd = plan.num_detectors();

  alignas(32) float stack_masks[kStackSlots * 8];
  sw::util::AlignedVector<float, 32> heap_masks;
  float* masks_data = stack_masks;
  if (stride > kStackSlots) {
    heap_masks.resize(stride * 8);
    masks_data = heap_masks.data();
  }

  const std::uint8_t* words[8];
  std::uint8_t* rows[8];
  std::size_t w = begin;
  for (; w + 8 <= end; w += 8) {
    for (std::size_t l = 0; l < 8; ++l) {
      words[l] = bits + (w + l) * stride;
      rows[l] = out + (w + l) * channels;
    }
    const auto sign_bit = [](std::uint8_t b) {
      return static_cast<int>(static_cast<std::uint32_t>(b != 0) << 31);
    };
    for (std::size_t s = 0; s < stride; ++s) {
      _mm256_store_ps(
          masks_data + 8 * s,
          _mm256_castsi256_ps(_mm256_setr_epi32(
              sign_bit(words[0][s]), sign_bit(words[1][s]),
              sign_bit(words[2][s]), sign_bit(words[3][s]),
              sign_bit(words[4][s]), sign_bit(words[5][s]),
              sign_bit(words[6][s]), sign_bit(words[7][s]))));
    }

    for (std::size_t d = 0; d < kf; ++d) {
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
        const __m256 zero = _mm256_broadcast_ss(&re0f[i]);
        const __m256 one = _mm256_broadcast_ss(&re1f[i]);
        const __m256 mask = _mm256_load_ps(masks_data + 8 * slots[i]);
        acc = _mm256_add_ps(acc, _mm256_blendv_ps(zero, one, mask));
      }
      const int neg = _mm256_movemask_ps(
          _mm256_cmp_ps(acc, _mm256_setzero_ps(), _CMP_LT_OQ));
      const std::size_t c = det_channel[d];
      for (std::size_t l = 0; l < 8; ++l) {
        rows[l][c] = static_cast<std::uint8_t>((neg >> l) & 1);
      }
    }

    for (std::size_t d = kf; d < nd; ++d) {
      const std::size_t c = det_channel[d];
      for (std::size_t half = 0; half < 2; ++half) {
        __m256d acc = _mm256_setzero_pd();
        for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
          const __m256d zero = _mm256_broadcast_sd(&re0[i]);
          const __m256d one = _mm256_broadcast_sd(&re1[i]);
          const __m128i half_mask = _mm_load_si128(reinterpret_cast<
              const __m128i*>(masks_data + 8 * slots[i] + 4 * half));
          const __m256d mask =
              _mm256_castsi256_pd(_mm256_cvtepi32_epi64(half_mask));
          acc = _mm256_add_pd(acc, _mm256_blendv_pd(zero, one, mask));
        }
        const int neg = _mm256_movemask_pd(
            _mm256_cmp_pd(acc, _mm256_setzero_pd(), _CMP_LT_OQ));
        for (std::size_t l = 0; l < 4; ++l) {
          rows[4 * half + l][c] = static_cast<std::uint8_t>((neg >> l) & 1);
        }
      }
    }
  }
  if (w < end) {
    detail::eval_bits_f32_scalar_range(plan, bits, w, end, out, 0, kf);
    detail::eval_bits_scalar_range(plan, bits, w, end, out, kf, nd);
  }
}

void eval_channels_avx2(const EvalPlan& plan, const std::uint8_t* bits,
                        std::size_t begin, std::size_t end,
                        sw::core::ChannelResult* out) {
  const auto offsets = plan.detector_offsets();
  const auto det_channel = plan.detector_channels();
  const auto results = plan.detector_results();
  const auto re0 = plan.re0();
  const auto im0 = plan.im0();
  const auto re1 = plan.re1();
  const auto im1 = plan.im1();
  const auto slots = plan.slots();
  const std::size_t stride = plan.slot_count();
  const std::size_t detectors = plan.num_detectors();

  alignas(32) double stack_masks[kStackSlots * 4];
  sw::util::AlignedVector<double, 32> heap_masks;
  double* masks_data = stack_masks;
  if (stride > kStackSlots) {
    heap_masks.resize(stride * 4);
    masks_data = heap_masks.data();
  }

  std::size_t w = begin;
  for (; w + 4 <= end; w += 4) {
    const std::uint8_t* w0 = bits + (w + 0) * stride;
    const std::uint8_t* w1 = bits + (w + 1) * stride;
    const std::uint8_t* w2 = bits + (w + 2) * stride;
    const std::uint8_t* w3 = bits + (w + 3) * stride;
    const auto sign_bit = [](std::uint8_t b) {
      return static_cast<long long>(static_cast<std::uint64_t>(b != 0) << 63);
    };
    for (std::size_t s = 0; s < stride; ++s) {
      _mm256_store_pd(
          masks_data + 4 * s,
          _mm256_castsi256_pd(_mm256_setr_epi64x(sign_bit(w0[s]),
                                                 sign_bit(w1[s]),
                                                 sign_bit(w2[s]),
                                                 sign_bit(w3[s]))));
    }

    for (std::size_t d = 0; d < detectors; ++d) {
      // Both complex components ride the same blend mask: the vector adds
      // are per-lane in plan order, so each lane's (re, im) pair is the
      // scalar kernel's sum bitwise, and decide_phase below sees exactly
      // the phasor the scalar gate path would.
      __m256d acc_re = _mm256_setzero_pd();
      __m256d acc_im = _mm256_setzero_pd();
      for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
        const __m256d mask = _mm256_load_pd(masks_data + 4 * slots[i]);
        acc_re = _mm256_add_pd(
            acc_re, _mm256_blendv_pd(_mm256_broadcast_sd(&re0[i]),
                                     _mm256_broadcast_sd(&re1[i]), mask));
        acc_im = _mm256_add_pd(
            acc_im, _mm256_blendv_pd(_mm256_broadcast_sd(&im0[i]),
                                     _mm256_broadcast_sd(&im1[i]), mask));
      }
      alignas(32) double lane_re[4];
      alignas(32) double lane_im[4];
      _mm256_store_pd(lane_re, acc_re);
      _mm256_store_pd(lane_im, acc_im);
      for (std::size_t l = 0; l < 4; ++l) {
        const auto decision = sw::core::decide_phase(
            std::complex<double>(lane_re[l], lane_im[l]),
            sw::core::kPhaseZero);
        // Element results[d]: plan order may be the block-f32 partition,
        // result rows stay in layout order.
        sw::core::ChannelResult& r = out[(w + l) * detectors + results[d]];
        r.channel = det_channel[d];
        r.logic = decision.logic;
        r.phase = decision.phase;
        r.amplitude = decision.amplitude;
        r.margin = decision.margin;
      }
    }
  }
  if (w < end) scalar_kernel().eval_channels(plan, bits, w, end, out);
}

}  // namespace

const Kernel* detail::avx2_kernel_candidate() {
  // Deliberately no CPUID check and no static-init machinery here: this TU
  // is compiled with -mavx2, so any non-trivial code in it could be
  // VEX-encoded and fault on a pre-AVX2 host. The runtime support check
  // lives in dispatch.cpp (a portable TU); this is a bare constant return.
  static constexpr Kernel kernel{"avx2", &eval_bits_avx2, &eval_bits_f32_avx2,
                                 &eval_bits_mixed_avx2, &eval_channels_avx2};
  return &kernel;
}

}  // namespace sw::wavesim::kernels

#else  // no AVX2 codegen in this build or non-x86 target

namespace sw::wavesim::kernels {

const Kernel* detail::avx2_kernel_candidate() { return nullptr; }

}  // namespace sw::wavesim::kernels

#endif
