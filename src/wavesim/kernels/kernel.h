// Runtime-dispatched evaluation kernels over SoA EvalPlans.
//
// A kernel decodes a contiguous range of packed input words against a
// frozen EvalPlan. Four entry points per kernel:
//
//   * eval_bits — the packed fast path: for each word and detector it
//     accumulates the bit-selected phasor real parts in double and
//     thresholds (the decide_phase decision with reference 0 is exactly
//     Re < 0).
//   * eval_bits_f32 — the same decode over the plan's float arrays, legal
//     only on a plan whose build-time margin analysis accepted every
//     detector (plan.has_f32()); decodes are bit-identical to eval_bits on
//     every such plan by construction of the fallback.
//   * eval_bits_mixed — the block-f32 path: f32 accumulation for the
//     plan's proved detector run [0, plan.num_f32_detectors()), f64 rescue
//     lanes for the rest. Two branch-free sub-passes, no per-detector
//     precision branch; legal whenever plan.num_f32_detectors() > 0.
//   * eval_channels — the full ChannelResult path (evaluate /
//     evaluate_with): accumulates the complex phasor in double and decodes
//     phase/amplitude/margin via decide_phase, writing rows of
//     num_words x plan.num_detectors() ChannelResults. Always double:
//     phase and amplitude are analog readouts, not thresholded bits.
//
// Three implementations exist, a ladder of identical semantics at
// increasing width: a portable scalar reference, an AVX2 kernel (four
// words per 256-bit register in double, eight in f32) and an AVX-512
// kernel (eight words per 512-bit register in double, sixteen in f32).
// Both vector kernels evaluate lane-for-lane in the scalar accumulation
// order, so every entry point decodes bit-for-bit identically to its
// scalar counterpart.
//
// Selection happens once per process on first use: the SW_EVAL_KERNEL
// environment variable overrides (accepted values are exactly the kernel
// names in the dispatch table — currently "scalar", "avx2", "avx512"),
// otherwise the best kernel the build and the CPU support wins
// (CPUID-checked at runtime — an AVX-512-compiled binary still runs, on
// the AVX2 or scalar kernel, on an older host). An unknown or unsupported
// SW_EVAL_KERNEL value fails loudly (the error names the variable and
// regenerates the accepted-values list from the dispatch table) instead of
// silently serving the scalar fallback. Tests and benches bypass the
// cached choice via select_kernel().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sw::core {
struct ChannelResult;
}  // namespace sw::core

namespace sw::wavesim {

class EvalPlan;

namespace kernels {

struct Kernel {
  const char* name;
  /// Decode words [begin, end): reads rows [begin, end) of the row-major
  /// num_words x plan.slot_count() packed bit matrix `bits` and writes rows
  /// [begin, end) of the num_words x plan.num_channels() decoded-bit matrix
  /// `out`. Both pointers address the full matrices (row 0), not the range.
  void (*eval_bits)(const EvalPlan& plan, const std::uint8_t* bits,
                    std::size_t begin, std::size_t end, std::uint8_t* out);
  /// Same contract over the plan's f32 arrays. Callers must check
  /// plan.has_f32() first; the kernels assume the arrays exist.
  void (*eval_bits_f32)(const EvalPlan& plan, const std::uint8_t* bits,
                        std::size_t begin, std::size_t end, std::uint8_t* out);
  /// Same contract on a block-f32 plan: detectors [0,
  /// plan.num_f32_detectors()) accumulate in f32 over the plan's float
  /// mirrors, the remaining rescue detectors in f64 over the double
  /// arrays. Callers must check plan.num_f32_detectors() > 0 first (the
  /// float mirrors must exist); on a fully-proved plan this decodes
  /// exactly like eval_bits_f32, on a fully-rejected plan exactly like
  /// eval_bits.
  void (*eval_bits_mixed)(const EvalPlan& plan, const std::uint8_t* bits,
                          std::size_t begin, std::size_t end,
                          std::uint8_t* out);
  /// Full ChannelResult decode of words [begin, end): writes rows
  /// [begin, end) of the row-major num_words x plan.num_detectors() result
  /// matrix `out`, element plan.detector_results()[d] of a row carrying
  /// plan-order detector d's decision (channel field =
  /// plan.detector_channels()[d]) — so rows are always in layout order,
  /// even on a block-f32 plan whose detectors were partitioned at build
  /// time. Accumulation is complex double in plan order and the decision
  /// is core::decide_phase, so results are bit-for-bit the scalar gate
  /// path's.
  void (*eval_channels)(const EvalPlan& plan, const std::uint8_t* bits,
                        std::size_t begin, std::size_t end,
                        sw::core::ChannelResult* out);
};

/// Portable reference kernel; always available.
const Kernel& scalar_kernel();

/// AVX2 kernel, or nullptr when the build lacks AVX2 codegen or the CPU
/// lacks the instructions.
const Kernel* avx2_kernel();

/// AVX-512 kernel, or nullptr when the build lacks AVX-512 codegen or the
/// CPU lacks the instructions (requires AVX512F + AVX512BW).
const Kernel* avx512_kernel();

namespace detail {
/// The AVX2 kernel as compiled (nullptr when the build has no AVX2
/// codegen), with NO runtime CPU check: defined in the -mavx2 TU as a bare
/// constant return so the only AVX2-encoded code in the binary is the
/// kernel body itself. Only avx2_kernel() — which performs the CPUID check
/// from a portable TU first — may call this; dereferencing the result's
/// entry points on a pre-AVX2 host is SIGILL.
const Kernel* avx2_kernel_candidate();

/// The AVX-512 kernel as compiled (nullptr when the build has no AVX-512
/// codegen), same contract as avx2_kernel_candidate(): no CPU check, a
/// bare constant return from the -mavx512f/-mavx512bw TU. Only
/// avx512_kernel() may call this.
const Kernel* avx512_kernel_candidate();

/// Scalar reference loops restricted to the plan-order detector range
/// [d_begin, d_end) — the building blocks of every eval_bits_mixed and of
/// the vector kernels' odd-word tails (which must finish a sub-pass
/// without re-decoding the other run's detectors). Same word-range
/// contract as Kernel::eval_bits; eval_bits_f32_scalar_range reads the
/// plan's float mirrors, so d_end must not exceed
/// plan.num_f32_detectors() unless plan.has_f32().
void eval_bits_scalar_range(const EvalPlan& plan, const std::uint8_t* bits,
                            std::size_t begin, std::size_t end,
                            std::uint8_t* out, std::size_t d_begin,
                            std::size_t d_end);
void eval_bits_f32_scalar_range(const EvalPlan& plan,
                                const std::uint8_t* bits, std::size_t begin,
                                std::size_t end, std::uint8_t* out,
                                std::size_t d_begin, std::size_t d_end);
}  // namespace detail

/// Kernel by name (any dispatch-table entry: "scalar" | "avx2" |
/// "avx512"); throws sw::util::Error on an unknown name or an unavailable
/// kernel. Does not consult or mutate the process's cached active choice.
const Kernel& select_kernel(std::string_view name);

/// Resolves a forced SW_EVAL_KERNEL value, wrapping select_kernel errors
/// with the variable name so a typo'd override fails with an actionable
/// message ("SW_EVAL_KERNEL: unknown evaluation kernel ...") instead of a
/// bare unknown-name error — and never falls back to scalar silently.
const Kernel& kernel_from_env(std::string_view value);

/// The process-wide kernel: SW_EVAL_KERNEL when set (unknown/unavailable
/// values throw on first use), else the best supported kernel — the last
/// available dispatch-table entry, avx512 > avx2 > scalar. Cached after
/// the first successful call.
const Kernel& active_kernel();

}  // namespace kernels

/// Name of the kernel evaluate_bits dispatches to ("scalar" | "avx2" |
/// "avx512"); surfaced through sw::serve::ServiceStats and logged by
/// EvaluatorService so operators and benches can tell which path ran.
std::string_view active_kernel_name();

}  // namespace sw::wavesim
