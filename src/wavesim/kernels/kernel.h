// Runtime-dispatched evaluation kernels over SoA EvalPlans.
//
// A kernel decodes a contiguous range of packed input words against a
// frozen EvalPlan: for each word and detector it accumulates the
// bit-selected phasor contributions and thresholds the real part (the
// decide_phase decision with reference 0 is exactly Re < 0). Two
// implementations exist: a portable scalar reference and an AVX2 kernel
// that evaluates four words per vector lane-for-lane in the same
// accumulation order, so both decode bit-for-bit identically to the scalar
// gate path.
//
// Selection happens once per process on first use: the SW_EVAL_KERNEL
// environment variable ("scalar" or "avx2") overrides, otherwise the best
// kernel the build and the CPU support wins (CPUID-checked at runtime — an
// AVX2-compiled binary still runs, on the scalar kernel, on a pre-AVX2
// host). Tests and benches bypass the cached choice via select_kernel().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sw::wavesim {

class EvalPlan;

namespace kernels {

struct Kernel {
  const char* name;
  /// Decode words [begin, end): reads rows [begin, end) of the row-major
  /// num_words x plan.slot_count() packed bit matrix `bits` and writes rows
  /// [begin, end) of the num_words x plan.num_channels() decoded-bit matrix
  /// `out`. Both pointers address the full matrices (row 0), not the range.
  void (*eval_bits)(const EvalPlan& plan, const std::uint8_t* bits,
                    std::size_t begin, std::size_t end, std::uint8_t* out);
};

/// Portable reference kernel; always available.
const Kernel& scalar_kernel();

/// AVX2 kernel, or nullptr when the build lacks AVX2 codegen or the CPU
/// lacks the instructions.
const Kernel* avx2_kernel();

namespace detail {
/// The AVX2 kernel as compiled (nullptr when the build has no AVX2
/// codegen), with NO runtime CPU check: defined in the -mavx2 TU as a bare
/// constant return so the only AVX2-encoded code in the binary is the
/// kernel body itself. Only avx2_kernel() — which performs the CPUID check
/// from a portable TU first — may call this; dereferencing the result's
/// eval_bits on a pre-AVX2 host is SIGILL.
const Kernel* avx2_kernel_candidate();
}  // namespace detail

/// Kernel by name ("scalar" | "avx2"); throws sw::util::Error on an unknown
/// name or an unavailable kernel. Does not consult or mutate the process's
/// cached active choice.
const Kernel& select_kernel(std::string_view name);

/// The process-wide kernel: SW_EVAL_KERNEL when set (unknown/unavailable
/// values throw on first use), else the best supported kernel. Cached after
/// the first successful call.
const Kernel& active_kernel();

}  // namespace kernels

/// Name of the kernel evaluate_bits dispatches to ("scalar" | "avx2");
/// surfaced through sw::serve::ServiceStats and logged by EvaluatorService
/// so operators and benches can tell which path ran.
std::string_view active_kernel_name();

}  // namespace sw::wavesim
