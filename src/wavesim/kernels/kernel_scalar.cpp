// Portable reference kernel: one word at a time, one detector at a time,
// contributions accumulated in plan (= scalar source) order.
//
// Only the real parts are accumulated: complex addition is componentwise,
// so dropping the imaginary lane leaves the real sum bitwise unchanged, and
// the packed-bit decode consumes nothing but sign(Re). This alone roughly
// halves the arithmetic of the PR 1/2 AoS loop, which dragged the full
// complex pair (and the indexing metadata interleaved with it) through the
// accumulator.
#include "wavesim/kernels/kernel.h"

#include "wavesim/eval_plan.h"

namespace sw::wavesim::kernels {

namespace {

void eval_bits_scalar(const EvalPlan& plan, const std::uint8_t* bits,
                      std::size_t begin, std::size_t end, std::uint8_t* out) {
  const auto offsets = plan.detector_offsets();
  const auto det_channel = plan.detector_channels();
  const auto re0 = plan.re0();
  const auto re1 = plan.re1();
  const auto slots = plan.slots();
  const std::size_t stride = plan.slot_count();
  const std::size_t channels = plan.num_channels();
  const std::size_t detectors = plan.num_detectors();

  for (std::size_t w = begin; w < end; ++w) {
    const std::uint8_t* word = bits + w * stride;
    std::uint8_t* row = out + w * channels;
    for (std::size_t d = 0; d < detectors; ++d) {
      double acc = 0.0;
      for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
        acc += word[slots[i]] ? re1[i] : re0[i];
      }
      // decide_phase with reference 0: logic 1 iff the phase is closer to
      // pi than to 0, which is exactly Re(acc) < 0.
      row[det_channel[d]] = acc < 0.0 ? 1 : 0;
    }
  }
}

}  // namespace

const Kernel& scalar_kernel() {
  static constexpr Kernel kernel{"scalar", &eval_bits_scalar};
  return kernel;
}

}  // namespace sw::wavesim::kernels
