// Portable reference kernel: one word at a time, one detector at a time,
// contributions accumulated in plan (= scalar source) order.
//
// eval_bits accumulates only the real parts: complex addition is
// componentwise, so dropping the imaginary lane leaves the real sum bitwise
// unchanged, and the packed-bit decode consumes nothing but sign(Re). This
// alone roughly halves the arithmetic of the PR 1/2 AoS loop, which dragged
// the full complex pair (and the indexing metadata interleaved with it)
// through the accumulator. eval_bits_f32 is the same loop over the plan's
// float arrays; eval_bits_mixed composes the two loops over the plan's f32
// and rescue detector runs; eval_channels keeps the full complex pair
// because phase and amplitude need it, then decodes via decide_phase
// exactly like the scalar gate path.
//
// The bit loops are defined as detector-range helpers (exported through
// kernels::detail) because the block-f32 path needs them twice per word
// range — once per precision run — and the vector kernels need them for
// odd-word tails that must not re-decode the other run's detectors.
#include "wavesim/kernels/kernel.h"

#include <complex>

#include "core/detector.h"
#include "core/encoding.h"
#include "core/gate.h"
#include "wavesim/eval_plan.h"

namespace sw::wavesim::kernels {

void detail::eval_bits_scalar_range(const EvalPlan& plan,
                                    const std::uint8_t* bits,
                                    std::size_t begin, std::size_t end,
                                    std::uint8_t* out, std::size_t d_begin,
                                    std::size_t d_end) {
  const auto offsets = plan.detector_offsets();
  const auto det_channel = plan.detector_channels();
  const auto re0 = plan.re0();
  const auto re1 = plan.re1();
  const auto slots = plan.slots();
  const std::size_t stride = plan.slot_count();
  const std::size_t channels = plan.num_channels();

  for (std::size_t w = begin; w < end; ++w) {
    const std::uint8_t* word = bits + w * stride;
    std::uint8_t* row = out + w * channels;
    for (std::size_t d = d_begin; d < d_end; ++d) {
      double acc = 0.0;
      for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
        acc += word[slots[i]] ? re1[i] : re0[i];
      }
      // decide_phase with reference 0: logic 1 iff the phase is closer to
      // pi than to 0, which is exactly Re(acc) < 0.
      row[det_channel[d]] = acc < 0.0 ? 1 : 0;
    }
  }
}

void detail::eval_bits_f32_scalar_range(const EvalPlan& plan,
                                        const std::uint8_t* bits,
                                        std::size_t begin, std::size_t end,
                                        std::uint8_t* out, std::size_t d_begin,
                                        std::size_t d_end) {
  const auto offsets = plan.detector_offsets();
  const auto det_channel = plan.detector_channels();
  const auto re0 = plan.re0_f32();
  const auto re1 = plan.re1_f32();
  const auto slots = plan.slots();
  const std::size_t stride = plan.slot_count();
  const std::size_t channels = plan.num_channels();

  for (std::size_t w = begin; w < end; ++w) {
    const std::uint8_t* word = bits + w * stride;
    std::uint8_t* row = out + w * channels;
    for (std::size_t d = d_begin; d < d_end; ++d) {
      // Float accumulation in index order — exactly the sum the plan's
      // build-time validation sweep replayed, so the decode below can
      // never disagree with the double plan on a proved detector.
      float acc = 0.0f;
      for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
        acc += word[slots[i]] ? re1[i] : re0[i];
      }
      row[det_channel[d]] = acc < 0.0f ? 1 : 0;
    }
  }
}

namespace {

void eval_bits_scalar(const EvalPlan& plan, const std::uint8_t* bits,
                      std::size_t begin, std::size_t end, std::uint8_t* out) {
  detail::eval_bits_scalar_range(plan, bits, begin, end, out, 0,
                                 plan.num_detectors());
}

void eval_bits_f32_scalar(const EvalPlan& plan, const std::uint8_t* bits,
                          std::size_t begin, std::size_t end,
                          std::uint8_t* out) {
  detail::eval_bits_f32_scalar_range(plan, bits, begin, end, out, 0,
                                     plan.num_detectors());
}

void eval_bits_mixed_scalar(const EvalPlan& plan, const std::uint8_t* bits,
                            std::size_t begin, std::size_t end,
                            std::uint8_t* out) {
  const std::size_t kf = plan.num_f32_detectors();
  detail::eval_bits_f32_scalar_range(plan, bits, begin, end, out, 0, kf);
  detail::eval_bits_scalar_range(plan, bits, begin, end, out, kf,
                                 plan.num_detectors());
}

void eval_channels_scalar(const EvalPlan& plan, const std::uint8_t* bits,
                          std::size_t begin, std::size_t end,
                          sw::core::ChannelResult* out) {
  const auto offsets = plan.detector_offsets();
  const auto det_channel = plan.detector_channels();
  const auto results = plan.detector_results();
  const auto re0 = plan.re0();
  const auto im0 = plan.im0();
  const auto re1 = plan.re1();
  const auto im1 = plan.im1();
  const auto slots = plan.slots();
  const std::size_t stride = plan.slot_count();
  const std::size_t detectors = plan.num_detectors();

  for (std::size_t w = begin; w < end; ++w) {
    const std::uint8_t* word = bits + w * stride;
    sw::core::ChannelResult* row = out + w * detectors;
    for (std::size_t d = 0; d < detectors; ++d) {
      std::complex<double> acc{0.0, 0.0};
      for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
        acc += word[slots[i]] ? std::complex<double>(re1[i], im1[i])
                              : std::complex<double>(re0[i], im0[i]);
      }
      const auto decision = sw::core::decide_phase(acc, sw::core::kPhaseZero);
      // Element results[d], not d: a block-f32 plan's detectors are in
      // partitioned plan order, but result rows stay in layout order.
      sw::core::ChannelResult& r = row[results[d]];
      r.channel = det_channel[d];
      r.logic = decision.logic;
      r.phase = decision.phase;
      r.amplitude = decision.amplitude;
      r.margin = decision.margin;
    }
  }
}

}  // namespace

const Kernel& scalar_kernel() {
  static constexpr Kernel kernel{"scalar", &eval_bits_scalar,
                                 &eval_bits_f32_scalar, &eval_bits_mixed_scalar,
                                 &eval_channels_scalar};
  return kernel;
}

}  // namespace sw::wavesim::kernels
