// Kernel selection: explicit by name, or once per process via
// SW_EVAL_KERNEL / CPUID.
#include <cstdlib>
#include <string>

#include "util/error.h"
#include "wavesim/kernels/kernel.h"

namespace sw::wavesim {

namespace kernels {

const Kernel* avx2_kernel() {
  // The CPUID check runs here, in a portable TU: the -mavx2 TU is entered
  // only once the host is known to execute AVX2 (see
  // detail::avx2_kernel_candidate), so a pre-AVX2 x86 host can never fault
  // inside the dispatch path itself.
#if defined(__x86_64__) || defined(__i386__)
  static const Kernel* kernel =
      __builtin_cpu_supports("avx2") ? detail::avx2_kernel_candidate()
                                     : nullptr;
  return kernel;
#else
  return nullptr;
#endif
}

const Kernel& select_kernel(std::string_view name) {
  if (name == "scalar") return scalar_kernel();
  if (name == "avx2") {
    const Kernel* kernel = avx2_kernel();
    if (kernel == nullptr) {
      throw sw::util::Error(
          "evaluation kernel 'avx2' is unavailable: the build lacks AVX2 "
          "codegen or this CPU lacks the instructions");
    }
    return *kernel;
  }
  throw sw::util::Error("unknown evaluation kernel '" + std::string(name) +
                        "' (expected 'scalar' or 'avx2')");
}

const Kernel& kernel_from_env(std::string_view value) {
  // Wrap, don't fall back: an operator who typo'd SW_EVAL_KERNEL=sclar
  // must get a hard error naming the variable, never a silent scalar run
  // that reads as a perf regression three dashboards later.
  try {
    return select_kernel(value);
  } catch (const sw::util::Error& e) {
    throw sw::util::Error(std::string("SW_EVAL_KERNEL: ") + e.what());
  }
}

const Kernel& active_kernel() {
  // Magic-static initialisation: the lambda runs once; if the override
  // names an unknown/unavailable kernel the exception propagates to the
  // caller and initialisation retries on the next call.
  static const Kernel& chosen = []() -> const Kernel& {
    const char* env = std::getenv("SW_EVAL_KERNEL");
    if (env != nullptr && *env != '\0') return kernel_from_env(env);
    if (const Kernel* kernel = avx2_kernel()) return *kernel;
    return scalar_kernel();
  }();
  return chosen;
}

}  // namespace kernels

std::string_view active_kernel_name() { return kernels::active_kernel().name; }

}  // namespace sw::wavesim
