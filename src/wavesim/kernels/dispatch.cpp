// Kernel selection: explicit by name, or once per process via
// SW_EVAL_KERNEL / CPUID.
#include <cstdlib>
#include <iterator>
#include <string>

#include "util/error.h"
#include "wavesim/kernels/kernel.h"

namespace sw::wavesim {

namespace kernels {

const Kernel* avx2_kernel() {
  // The CPUID check runs here, in a portable TU: the -mavx2 TU is entered
  // only once the host is known to execute AVX2 (see
  // detail::avx2_kernel_candidate), so a pre-AVX2 x86 host can never fault
  // inside the dispatch path itself.
#if defined(__x86_64__) || defined(__i386__)
  static const Kernel* kernel =
      __builtin_cpu_supports("avx2") ? detail::avx2_kernel_candidate()
                                     : nullptr;
  return kernel;
#else
  return nullptr;
#endif
}

const Kernel* avx512_kernel() {
  // AVX512F covers the compute (masked blends, wide adds, mask compares);
  // BW is checked for the byte-granularity mask transposes (shared contract
  // with the AVX-512 wire codec), VL for the xmm-width masked ops in the
  // mixed kernel's decode transpose. Every BW part ships VL (the one VL-less
  // AVX-512 line, Knights Landing, lacked BW too), so the triple gate does
  // not narrow real hardware coverage.
#if defined(__x86_64__) || defined(__i386__)
  static const Kernel* kernel = (__builtin_cpu_supports("avx512f") &&
                                 __builtin_cpu_supports("avx512bw") &&
                                 __builtin_cpu_supports("avx512vl"))
                                    ? detail::avx512_kernel_candidate()
                                    : nullptr;
  return kernel;
#else
  return nullptr;
#endif
}

namespace {

/// The one dispatch table: every named kernel, slowest first. select_kernel
/// resolves names against it, active_kernel's auto choice takes the *last*
/// available entry, and error messages regenerate their accepted-values
/// list from it — adding a kernel here is the whole registration.
struct KernelEntry {
  const char* name;
  const Kernel* (*get)();
};

const Kernel* scalar_kernel_ptr() { return &scalar_kernel(); }

constexpr KernelEntry kKernelTable[] = {
    {"scalar", &scalar_kernel_ptr},
    {"avx2", &avx2_kernel},
    {"avx512", &avx512_kernel},
};

std::string accepted_kernel_names() {
  std::string names;
  constexpr std::size_t n = std::size(kKernelTable);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) names += (i + 1 == n) ? " or " : ", ";
    names += '\'';
    names += kKernelTable[i].name;
    names += '\'';
  }
  return names;
}

}  // namespace

const Kernel& select_kernel(std::string_view name) {
  for (const KernelEntry& entry : kKernelTable) {
    if (name != entry.name) continue;
    const Kernel* kernel = entry.get();
    if (kernel == nullptr) {
      throw sw::util::Error("evaluation kernel '" + std::string(name) +
                            "' is unavailable: the build lacks the codegen "
                            "or this CPU lacks the instructions");
    }
    return *kernel;
  }
  throw sw::util::Error("unknown evaluation kernel '" + std::string(name) +
                        "' (expected " + accepted_kernel_names() + ")");
}

const Kernel& kernel_from_env(std::string_view value) {
  // Wrap, don't fall back: an operator who typo'd SW_EVAL_KERNEL=sclar
  // must get a hard error naming the variable, never a silent scalar run
  // that reads as a perf regression three dashboards later.
  try {
    return select_kernel(value);
  } catch (const sw::util::Error& e) {
    throw sw::util::Error(std::string("SW_EVAL_KERNEL: ") + e.what());
  }
}

const Kernel& active_kernel() {
  // Magic-static initialisation: the lambda runs once; if the override
  // names an unknown/unavailable kernel the exception propagates to the
  // caller and initialisation retries on the next call.
  static const Kernel& chosen = []() -> const Kernel& {
    const char* env = std::getenv("SW_EVAL_KERNEL");
    if (env != nullptr && *env != '\0') return kernel_from_env(env);
    // Auto: the fastest available entry (the table is ordered slowest
    // first and 'scalar' is always available).
    const Kernel* best = &scalar_kernel();
    for (const KernelEntry& entry : kKernelTable) {
      if (const Kernel* kernel = entry.get()) best = kernel;
    }
    return *best;
  }();
  return chosen;
}

}  // namespace kernels

std::string_view active_kernel_name() { return kernels::active_kernel().name; }

}  // namespace sw::wavesim
