// AVX-512 kernel: eight words per __m512d (sixteen per __m512 in f32), one
// word per lane.
//
// Same bit-exactness argument as the AVX2 kernel — vectorise across words,
// never across a detector's contributions, so lane l's accumulation is the
// scalar kernel's for word l, addition for addition — at twice the width.
// Where AVX2 carries per-slot select masks as sign-bit vectors for
// vblendvpd/vblendvps, AVX-512 uses its native mask registers: one
// __mmask8 (f64) or __mmask16 (f32) per input slot, built once per word
// group, consumed by _mm512_mask_blend_pd/ps. That keeps the per-slot
// scratch at one or two bytes instead of a full vector, and the decode is
// a single _mm512_cmp_pd_mask / _mm512_cmp_ps_mask (ordered < 0.0, so a
// -0.0 sum decodes as 0 exactly like the scalar `acc < 0.0`).
//
// The bit passes take a detector range for the block-f32 path (f32 pass
// over the proved run, f64 pass over the rescue run); odd-word tails fall
// to the scalar range helpers.
//
// This translation unit is compiled with -mavx512f -mavx512bw (CMake adds
// the flags only for this file when the compiler supports them and the
// target is x86); nothing in it executes unless the CPUID check in
// dispatch.cpp (a portable TU) confirmed AVX512F+BW first, or the
// candidate getter — a bare constant return — is called. The compute below
// needs only AVX512F; BW rides along so the kernel and the AVX-512 wire
// codec (byte-granularity mask ops) advertise one CPU contract.
#include "wavesim/kernels/kernel.h"

#if defined(SWLOGIC_EVAL_AVX512) && \
    (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <algorithm>
#include <complex>
#include <vector>

#include "core/detector.h"
#include "core/encoding.h"
#include "core/gate.h"
#include "wavesim/eval_plan.h"

namespace sw::wavesim::kernels {

namespace {

/// Per-slot mask scratch bound for the stack path (matches the AVX2
/// kernel's; the masks here are 1-2 bytes each, so this is tiny either
/// way, but the paper's strides all fit).
constexpr std::size_t kStackSlots = 64;

/// All-ones/prefix __mmask64 for an n-byte chunk tail (n <= 64).
inline __mmask64 chunk_tail_mask(std::size_t n) {
  return n == 64 ? ~static_cast<__mmask64>(0)
                 : static_cast<__mmask64>((std::uint64_t{1} << n) - 1);
}

/// Builds the per-slot __mmask8 array for an 8-word group in vector code:
/// per 64-slot chunk, one masked byte load + byte test per lane ORs lane
/// l's bit into all 64 per-slot masks at once (blend keyed on the
/// nonzero-byte mask — BW ops, which is why the dispatch gate requires
/// AVX512BW). The scalar equivalent is an 8-deep dependent or-shift chain
/// per slot, and at 16 lanes that chain, not the arithmetic, dominated the
/// whole kernel.
inline void build_masks_u8(const std::uint8_t* const words[8],
                           std::size_t stride, std::uint8_t* masks) {
  for (std::size_t base = 0; base < stride; base += 64) {
    const std::size_t n = std::min<std::size_t>(64, stride - base);
    const __mmask64 tail = chunk_tail_mask(n);
    __m512i acc = _mm512_setzero_si512();
    for (std::size_t l = 0; l < 8; ++l) {
      const __m512i v = _mm512_maskz_loadu_epi8(tail, words[l] + base);
      const __mmask64 nz = _mm512_test_epi8_mask(v, v);
      const __m512i bit =
          _mm512_set1_epi8(static_cast<char>(std::uint8_t{1} << l));
      acc = _mm512_mask_blend_epi8(nz, acc, _mm512_or_si512(acc, bit));
    }
    _mm512_mask_storeu_epi8(masks + base, tail, acc);
  }
}

/// The 16-lane flavour: per-slot __mmask16s, two u16 accumulators per
/// 64-slot chunk (the byte test yields one __mmask64 whose halves key the
/// low/high 32 slots' word-granularity blends).
inline void build_masks_u16(const std::uint8_t* const words[16],
                            std::size_t stride, std::uint16_t* masks) {
  for (std::size_t base = 0; base < stride; base += 64) {
    const std::size_t n = std::min<std::size_t>(64, stride - base);
    const __mmask64 tail = chunk_tail_mask(n);
    __m512i lo = _mm512_setzero_si512();  // slots base .. base+31
    __m512i hi = _mm512_setzero_si512();  // slots base+32 .. base+63
    for (std::size_t l = 0; l < 16; ++l) {
      const __m512i v = _mm512_maskz_loadu_epi8(tail, words[l] + base);
      const __mmask64 nz = _mm512_test_epi8_mask(v, v);
      const __m512i bit =
          _mm512_set1_epi16(static_cast<short>(std::uint32_t{1} << l));
      lo = _mm512_mask_blend_epi16(static_cast<__mmask32>(nz), lo,
                                   _mm512_or_si512(lo, bit));
      hi = _mm512_mask_blend_epi16(static_cast<__mmask32>(nz >> 32), hi,
                                   _mm512_or_si512(hi, bit));
    }
    const std::size_t lo_n = std::min<std::size_t>(n, 32);
    _mm512_mask_storeu_epi16(
        masks + base,
        static_cast<__mmask32>((std::uint64_t{1} << lo_n) - 1), lo);
    if (n > 32) {
      _mm512_mask_storeu_epi16(
          masks + base + 32,
          static_cast<__mmask32>((std::uint64_t{1} << (n - 32)) - 1), hi);
    }
  }
}

void eval_bits_avx512_range(const EvalPlan& plan, const std::uint8_t* bits,
                            std::size_t begin, std::size_t end,
                            std::uint8_t* out, std::size_t d_begin,
                            std::size_t d_end) {
  const auto offsets = plan.detector_offsets();
  const auto det_channel = plan.detector_channels();
  const auto re0 = plan.re0();
  const auto re1 = plan.re1();
  const auto slots = plan.slots();
  const std::size_t stride = plan.slot_count();
  const std::size_t channels = plan.num_channels();

  // One __mmask8 per input slot: bit l set iff word l's bit at that slot
  // is nonzero (the scalar kernel's `word[slot] ?` truthiness, not bit 0).
  std::uint8_t stack_masks[kStackSlots];
  std::vector<std::uint8_t> heap_masks;
  std::uint8_t* masks = stack_masks;
  if (stride > kStackSlots) {
    heap_masks.resize(stride);
    masks = heap_masks.data();
  }

  const std::uint8_t* words[8];
  std::uint8_t* rows[8];
  std::size_t w = begin;
  for (; w + 8 <= end; w += 8) {
    for (std::size_t l = 0; l < 8; ++l) {
      words[l] = bits + (w + l) * stride;
      rows[l] = out + (w + l) * channels;
    }
    build_masks_u8(words, stride, masks);

    for (std::size_t d = d_begin; d < d_end; ++d) {
      __m512d acc = _mm512_setzero_pd();
      for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
        // blend(k, a, b): lane l reads b where bit l of k is set — so a
        // set input bit selects the phase-one constant, per lane, and the
        // add is the scalar accumulation step in every lane.
        acc = _mm512_add_pd(
            acc, _mm512_mask_blend_pd(static_cast<__mmask8>(masks[slots[i]]),
                                      _mm512_set1_pd(re0[i]),
                                      _mm512_set1_pd(re1[i])));
      }
      const __mmask8 neg =
          _mm512_cmp_pd_mask(acc, _mm512_setzero_pd(), _CMP_LT_OQ);
      const std::size_t c = det_channel[d];
      for (std::size_t l = 0; l < 8; ++l) {
        rows[l][c] = static_cast<std::uint8_t>((neg >> l) & 1);
      }
    }
  }
  if (w < end) {
    detail::eval_bits_scalar_range(plan, bits, w, end, out, d_begin, d_end);
  }
}

void eval_bits_f32_avx512_range(const EvalPlan& plan,
                                const std::uint8_t* bits, std::size_t begin,
                                std::size_t end, std::uint8_t* out,
                                std::size_t d_begin, std::size_t d_end) {
  const auto offsets = plan.detector_offsets();
  const auto det_channel = plan.detector_channels();
  const auto re0 = plan.re0_f32();
  const auto re1 = plan.re1_f32();
  const auto slots = plan.slots();
  const std::size_t stride = plan.slot_count();
  const std::size_t channels = plan.num_channels();

  std::uint16_t stack_masks[kStackSlots];
  std::vector<std::uint16_t> heap_masks;
  std::uint16_t* masks = stack_masks;
  if (stride > kStackSlots) {
    heap_masks.resize(stride);
    masks = heap_masks.data();
  }

  const std::uint8_t* words[16];
  std::uint8_t* rows[16];
  std::size_t w = begin;
  for (; w + 16 <= end; w += 16) {
    for (std::size_t l = 0; l < 16; ++l) {
      words[l] = bits + (w + l) * stride;
      rows[l] = out + (w + l) * channels;
    }
    build_masks_u16(words, stride, masks);

    for (std::size_t d = d_begin; d < d_end; ++d) {
      __m512 acc = _mm512_setzero_ps();
      for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
        acc = _mm512_add_ps(
            acc,
            _mm512_mask_blend_ps(static_cast<__mmask16>(masks[slots[i]]),
                                 _mm512_set1_ps(re0[i]),
                                 _mm512_set1_ps(re1[i])));
      }
      const __mmask16 neg =
          _mm512_cmp_ps_mask(acc, _mm512_setzero_ps(), _CMP_LT_OQ);
      const std::size_t c = det_channel[d];
      for (std::size_t l = 0; l < 16; ++l) {
        rows[l][c] = static_cast<std::uint8_t>((neg >> l) & 1);
      }
    }
  }
  if (w < end) {
    detail::eval_bits_f32_scalar_range(plan, bits, w, end, out, d_begin,
                                       d_end);
  }
}

void eval_bits_avx512(const EvalPlan& plan, const std::uint8_t* bits,
                      std::size_t begin, std::size_t end, std::uint8_t* out) {
  eval_bits_avx512_range(plan, bits, begin, end, out, 0,
                         plan.num_detectors());
}

void eval_bits_f32_avx512(const EvalPlan& plan, const std::uint8_t* bits,
                          std::size_t begin, std::size_t end,
                          std::uint8_t* out) {
  eval_bits_f32_avx512_range(plan, bits, begin, end, out, 0,
                             plan.num_detectors());
}

void eval_bits_mixed_avx512(const EvalPlan& plan, const std::uint8_t* bits,
                            std::size_t begin, std::size_t end,
                            std::uint8_t* out) {
  // Fused single pass per 16-word group: one u16 mask build serves BOTH
  // precision runs — the f32 run consumes whole __mmask16s, the f64 rescue
  // run consumes their byte halves as __mmask8s across two 8-wide passes.
  // Composing the two range kernels instead would re-read the packed words
  // and rebuild masks per precision, and with the arithmetic this cheap
  // the second mask build erases the f32 run's win.
  const auto offsets = plan.detector_offsets();
  const auto det_channel = plan.detector_channels();
  const auto re0f = plan.re0_f32();
  const auto re1f = plan.re1_f32();
  const auto re0 = plan.re0();
  const auto re1 = plan.re1();
  const auto slots = plan.slots();
  const std::size_t stride = plan.slot_count();
  const std::size_t channels = plan.num_channels();
  const std::size_t kf = plan.num_f32_detectors();
  const std::size_t nd = plan.num_detectors();

  std::uint16_t stack_masks[kStackSlots];
  std::vector<std::uint16_t> heap_masks;
  std::uint16_t* masks = stack_masks;
  if (stride > kStackSlots) {
    heap_masks.resize(stride);
    masks = heap_masks.data();
  }

  // The paper's serving shape (8 detectors over 8 channels) takes a fully
  // vectorised decode: per group each detector's 16 verdict bits become a
  // byte vector, and a 3-level unpack network transposes the 8 channel
  // vectors into 16 contiguous 8-byte output rows — one 16-byte store per
  // two rows instead of 128 dependent scalar byte scatters. Any other
  // shape falls back to the scalar scatter below; both write the same
  // bytes in the same last-writer order.
  const bool dense = (channels == 8 && nd == 8);

  const std::uint8_t* words[16];
  std::uint8_t* rows[16];
  std::size_t w = begin;
  for (; w + 16 <= end; w += 16) {
    for (std::size_t l = 0; l < 16; ++l) {
      words[l] = bits + (w + l) * stride;
      rows[l] = out + (w + l) * channels;
    }
    build_masks_u16(words, stride, masks);

    // Verdict masks, identical accumulation order either way: bit l of
    // f32_neg(d) / bit (8*half + l) of the combined f64 mask is word
    // (w + that lane)'s decoded bit for detector d.
    const auto f32_neg = [&](std::size_t d) -> __mmask16 {
      __m512 acc = _mm512_setzero_ps();
      for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
        acc = _mm512_add_ps(
            acc,
            _mm512_mask_blend_ps(static_cast<__mmask16>(masks[slots[i]]),
                                 _mm512_set1_ps(re0f[i]),
                                 _mm512_set1_ps(re1f[i])));
      }
      return _mm512_cmp_ps_mask(acc, _mm512_setzero_ps(), _CMP_LT_OQ);
    };
    const auto f64_neg_half = [&](std::size_t d,
                                  std::size_t half) -> __mmask8 {
      __m512d acc = _mm512_setzero_pd();
      for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
        const __mmask8 m =
            static_cast<__mmask8>(masks[slots[i]] >> (8 * half));
        acc = _mm512_add_pd(acc,
                            _mm512_mask_blend_pd(m, _mm512_set1_pd(re0[i]),
                                                 _mm512_set1_pd(re1[i])));
      }
      return _mm512_cmp_pd_mask(acc, _mm512_setzero_pd(), _CMP_LT_OQ);
    };

    if (dense) {
      // nb[c]: byte j = word (w+j)'s bit for channel c's detector.
      __m128i nb[8];
      for (std::size_t c = 0; c < 8; ++c) nb[c] = _mm_setzero_si128();
      for (std::size_t d = 0; d < kf; ++d) {
        nb[det_channel[d]] = _mm_maskz_set1_epi8(f32_neg(d), 1);
      }
      for (std::size_t d = kf; d < nd; ++d) {
        const __mmask16 neg = static_cast<__mmask16>(
            static_cast<unsigned>(f64_neg_half(d, 0)) |
            (static_cast<unsigned>(f64_neg_half(d, 1)) << 8));
        nb[det_channel[d]] = _mm_maskz_set1_epi8(neg, 1);
      }
      // Transpose 8 channels x 16 words -> 16 rows x 8 channels.
      __m128i u[8];
      for (std::size_t k = 0; k < 4; ++k) {
        u[2 * k] = _mm_unpacklo_epi8(nb[2 * k], nb[2 * k + 1]);
        u[2 * k + 1] = _mm_unpackhi_epi8(nb[2 * k], nb[2 * k + 1]);
      }
      __m128i v[8];
      v[0] = _mm_unpacklo_epi16(u[0], u[2]);
      v[1] = _mm_unpackhi_epi16(u[0], u[2]);
      v[2] = _mm_unpacklo_epi16(u[1], u[3]);
      v[3] = _mm_unpackhi_epi16(u[1], u[3]);
      v[4] = _mm_unpacklo_epi16(u[4], u[6]);
      v[5] = _mm_unpackhi_epi16(u[4], u[6]);
      v[6] = _mm_unpacklo_epi16(u[5], u[7]);
      v[7] = _mm_unpackhi_epi16(u[5], u[7]);
      std::uint8_t* const base = out + w * channels;
      for (std::size_t k = 0; k < 4; ++k) {
        const __m128i lo = _mm_unpacklo_epi32(v[k], v[k + 4]);
        const __m128i hi = _mm_unpackhi_epi32(v[k], v[k + 4]);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(base + 32 * k), lo);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(base + 32 * k + 16), hi);
      }
    } else {
      for (std::size_t d = 0; d < kf; ++d) {
        const __mmask16 neg = f32_neg(d);
        const std::size_t c = det_channel[d];
        for (std::size_t l = 0; l < 16; ++l) {
          rows[l][c] = static_cast<std::uint8_t>((neg >> l) & 1);
        }
      }
      for (std::size_t d = kf; d < nd; ++d) {
        const std::size_t c = det_channel[d];
        for (std::size_t half = 0; half < 2; ++half) {
          const __mmask8 neg = f64_neg_half(d, half);
          for (std::size_t l = 0; l < 8; ++l) {
            rows[8 * half + l][c] = static_cast<std::uint8_t>((neg >> l) & 1);
          }
        }
      }
    }
  }
  if (w < end) {
    detail::eval_bits_f32_scalar_range(plan, bits, w, end, out, 0, kf);
    detail::eval_bits_scalar_range(plan, bits, w, end, out, kf, nd);
  }
}

void eval_channels_avx512(const EvalPlan& plan, const std::uint8_t* bits,
                          std::size_t begin, std::size_t end,
                          sw::core::ChannelResult* out) {
  const auto offsets = plan.detector_offsets();
  const auto det_channel = plan.detector_channels();
  const auto results = plan.detector_results();
  const auto re0 = plan.re0();
  const auto im0 = plan.im0();
  const auto re1 = plan.re1();
  const auto im1 = plan.im1();
  const auto slots = plan.slots();
  const std::size_t stride = plan.slot_count();
  const std::size_t detectors = plan.num_detectors();

  std::uint8_t stack_masks[kStackSlots];
  std::vector<std::uint8_t> heap_masks;
  std::uint8_t* masks = stack_masks;
  if (stride > kStackSlots) {
    heap_masks.resize(stride);
    masks = heap_masks.data();
  }

  const std::uint8_t* words[8];
  std::size_t w = begin;
  for (; w + 8 <= end; w += 8) {
    for (std::size_t l = 0; l < 8; ++l) words[l] = bits + (w + l) * stride;
    build_masks_u8(words, stride, masks);

    for (std::size_t d = 0; d < detectors; ++d) {
      // Both complex components ride the same mask; each lane's (re, im)
      // pair is the scalar sum bitwise, so decide_phase sees exactly the
      // phasor the scalar gate path would.
      __m512d acc_re = _mm512_setzero_pd();
      __m512d acc_im = _mm512_setzero_pd();
      for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
        const __mmask8 mask = static_cast<__mmask8>(masks[slots[i]]);
        acc_re = _mm512_add_pd(
            acc_re, _mm512_mask_blend_pd(mask, _mm512_set1_pd(re0[i]),
                                         _mm512_set1_pd(re1[i])));
        acc_im = _mm512_add_pd(
            acc_im, _mm512_mask_blend_pd(mask, _mm512_set1_pd(im0[i]),
                                         _mm512_set1_pd(im1[i])));
      }
      alignas(64) double lane_re[8];
      alignas(64) double lane_im[8];
      _mm512_store_pd(lane_re, acc_re);
      _mm512_store_pd(lane_im, acc_im);
      for (std::size_t l = 0; l < 8; ++l) {
        const auto decision = sw::core::decide_phase(
            std::complex<double>(lane_re[l], lane_im[l]),
            sw::core::kPhaseZero);
        sw::core::ChannelResult& r = out[(w + l) * detectors + results[d]];
        r.channel = det_channel[d];
        r.logic = decision.logic;
        r.phase = decision.phase;
        r.amplitude = decision.amplitude;
        r.margin = decision.margin;
      }
    }
  }
  if (w < end) scalar_kernel().eval_channels(plan, bits, w, end, out);
}

}  // namespace

const Kernel* detail::avx512_kernel_candidate() {
  // No CPUID check here — this TU is compiled with -mavx512f/-mavx512bw,
  // so anything non-trivial in it could fault on an older host. The
  // runtime support check lives in dispatch.cpp; this is a bare constant
  // return.
  static constexpr Kernel kernel{"avx512", &eval_bits_avx512,
                                 &eval_bits_f32_avx512,
                                 &eval_bits_mixed_avx512,
                                 &eval_channels_avx512};
  return &kernel;
}

}  // namespace sw::wavesim::kernels

#else  // no AVX-512 codegen in this build or non-x86 target

namespace sw::wavesim::kernels {

const Kernel* detail::avx512_kernel_candidate() { return nullptr; }

}  // namespace sw::wavesim::kernels

#endif
