// Multi-stage fused evaluation: a compiled gate cascade as one program.
//
// EvalPlan freezes ONE gate layout into SoA constants the kernels decode
// at register width. A synthesized circuit (src/compile) is a *cascade* of
// such gates: stage outputs become the next stage's phase inputs — the
// paper's "passed to potential following SW gates", with the regenerating
// transducers between stages flipping drive phases for free complements
// and pinning constants. EvalProgram is the frozen multi-stage artefact:
// one EvalPlan per stage plus an interconnect map (SlotSource per input
// slot), evaluated block-wise so a word batch runs end to end through
// every stage inside one pass — decoded verdict bits re-encoded as the
// next stage's inputs in scratch buffers that stay cache-hot, no
// per-stage replan, no per-stage round trip, no intermediate matrices of
// batch size.
//
// Each stage dispatches through the same kernel ladder as a single plan
// (scalar/AVX2/AVX-512; eval_bits / eval_bits_f32 / eval_bits_mixed per
// the stage plan's margin verdicts), so per-stage precision and block-f32
// are honoured and every stage's decode is lane-for-lane bit-exact with
// evaluating that stage's gate alone — which makes the whole program
// bit-exact with the per-stage physics path by induction.
//
// The ProgramSpec half of this header is the *portable* description —
// per-stage GateSpecs plus the interconnect, no designed geometry — which
// is what the wire format ships (serve/wire.h, v3 frames) and the plan
// cache hashes; an EvalProgram is built from it locally against a
// designer and engine, exactly like layouts.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/gate.h"
#include "core/gate_design.h"
#include "util/thread_pool.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/eval_plan.h"
#include "wavesim/kernels/kernel.h"
#include "wavesim/precision.h"
#include "wavesim/wave_engine.h"

namespace sw::wavesim {

/// Where one input slot of a stage gets its bit. Negation is free on the
/// fabric (the driving transducer flips phase), so it lives here rather
/// than costing a gate.
struct SlotSource {
  enum class Kind : std::uint8_t {
    kZero = 0,     ///< transducer pinned to phase 0
    kOne = 1,      ///< transducer pinned to phase pi
    kPrimary = 2,  ///< column `index` of the primary packed word
    kStage = 3,    ///< output channel `index` of earlier stage `stage`
  };
  Kind kind = Kind::kZero;
  std::uint32_t stage = 0;  ///< producing stage, kStage only
  std::uint32_t index = 0;  ///< primary column or stage output channel
  bool negated = false;     ///< complement the gathered bit

  friend bool operator==(const SlotSource&, const SlotSource&) = default;
};

/// One stage: the physical design request plus where each of its
/// num_inputs x num_channels slots (slot = channel * num_inputs + input,
/// the EvalPlan packing) reads from.
struct StageSpec {
  sw::core::GateSpec gate;
  std::vector<SlotSource> sources;

  friend bool operator==(const StageSpec&, const StageSpec&) = default;
};

/// A portable multi-stage program: what clients ship over the wire and
/// what the plan cache keys on. The program output is the last stage's
/// decoded bits.
struct ProgramSpec {
  /// Function inputs per channel. The primary packed matrix a program
  /// evaluates is row-major num_words x primary_slot_count(), the bit of
  /// primary input i on channel ch at column ch * num_primary_inputs + i
  /// (the same channel-major packing as a single gate's slots).
  std::size_t num_primary_inputs = 0;
  std::vector<StageSpec> stages;

  std::size_t num_stages() const { return stages.size(); }
  /// Channel count shared by every stage (validate() enforces agreement).
  std::size_t num_channels() const {
    return stages.empty() ? 0 : stages.back().gate.frequencies.size();
  }
  std::size_t primary_slot_count() const {
    return num_primary_inputs * num_channels();
  }
  /// Longest stage-to-stage path feeding the output stage (1 for a single
  /// gate): the physical cascade latency in stages.
  std::size_t depth() const;

  /// Shape and reference checks: at least one stage, uniform channel
  /// count, every stage's source list sized num_inputs x num_channels,
  /// kStage references strictly earlier stages and valid channels,
  /// kPrimary columns within primary_slot_count(). Throws sw::util::Error.
  void validate() const;

  friend bool operator==(const ProgramSpec&, const ProgramSpec&) = default;
};

/// Per-stage accumulated evaluation time, filled by evaluate_bits when the
/// caller passes a collector: ns[s] gains every block's gather+kernel time
/// for stage s. Accumulators are atomic because the word loop may fan out
/// across the program's pool threads; the numbers are therefore summed CPU
/// time per stage, not wall intervals.
struct StageTimings {
  explicit StageTimings(std::size_t num_stages) : ns(num_stages) {}
  std::vector<std::atomic<std::uint64_t>> ns;
};

class EvalProgram {
 public:
  /// Designs every stage's layout with `designer`, builds the per-stage
  /// EvalPlans on `engine` at options.precision (kAuto resolved; each
  /// stage's margin analysis decides f32 / block-f32 / f64 independently)
  /// and keeps a worker pool of options.num_threads for the word loop.
  /// Neither designer nor engine needs to outlive the program.
  EvalProgram(ProgramSpec spec, const sw::core::InlineGateDesigner& designer,
              const WaveEngine& engine, BatchOptions options = {});

  const ProgramSpec& spec() const { return spec_; }
  std::size_t num_stages() const { return stages_.size(); }
  std::size_t num_channels() const { return spec_.num_channels(); }
  std::size_t num_primary_slots() const {
    return spec_.primary_slot_count();
  }
  std::size_t depth() const { return depth_; }

  const EvalPlan& stage_plan(std::size_t stage) const {
    return *stages_[stage].plan;
  }
  const sw::core::DataParallelGate& stage_gate(std::size_t stage) const {
    return *stages_[stage].gate;
  }

  /// Aggregate precision mix: "f64" / "f32" when every stage agrees, else
  /// "mixed(<stage labels>)".
  std::string precision_label() const;

  /// Fused evaluation. `bits` is the row-major num_words x
  /// num_primary_slots() primary matrix (see ProgramSpec); returns the
  /// row-major num_words x num_channels() decoded bits of the LAST stage.
  /// Bit-exact with evaluating each stage's gate separately and re-packing
  /// by hand, for every kernel and per-stage precision.
  std::vector<std::uint8_t> evaluate_bits(
      std::size_t num_words, std::span<const std::uint8_t> bits) const;
  std::vector<std::uint8_t> evaluate_bits(
      std::size_t num_words, std::span<const std::uint8_t> bits,
      const kernels::Kernel& kernel) const;

  /// evaluate_bits with per-stage time attribution: `timings` must be
  /// sized num_stages() (or null for the plain path — identical cost).
  /// Two steady_clock reads per stage per 1024-word block, so the serving
  /// layer can always leave collection on.
  std::vector<std::uint8_t> evaluate_bits(
      std::size_t num_words, std::span<const std::uint8_t> bits,
      StageTimings* timings) const;

  /// Same pass, keeping every stage's outputs: row-major num_words x
  /// (num_stages() * num_channels()), stage s's channel ch at column
  /// s * num_channels() + ch. The cascade-delegation and oracle-test
  /// surface.
  std::vector<std::uint8_t> evaluate_all_bits(
      std::size_t num_words, std::span<const std::uint8_t> bits) const;
  std::vector<std::uint8_t> evaluate_all_bits(
      std::size_t num_words, std::span<const std::uint8_t> bits,
      const kernels::Kernel& kernel) const;

 private:
  struct Stage {
    std::unique_ptr<sw::core::DataParallelGate> gate;  ///< owns the layout
    std::shared_ptr<const EvalPlan> plan;
  };

  /// Run words [begin, end) through every stage; stage_bits must hold
  /// num_stages() * (end - begin) * num_channels() bytes and receives
  /// stage s's outputs at [s * (end - begin) * num_channels(), ...) in
  /// block-local row-major order.
  void eval_range(const kernels::Kernel& kernel,
                  std::span<const std::uint8_t> bits, std::size_t begin,
                  std::size_t end, std::vector<std::uint8_t>& slot_scratch,
                  std::vector<std::uint8_t>& stage_bits,
                  StageTimings* timings) const;

  std::vector<std::uint8_t> evaluate_impl(std::size_t num_words,
                                          std::span<const std::uint8_t> bits,
                                          const kernels::Kernel& kernel,
                                          bool all_stages,
                                          StageTimings* timings) const;

  ProgramSpec spec_;
  std::vector<Stage> stages_;
  std::size_t depth_ = 0;
  std::size_t max_slots_ = 0;
  mutable sw::util::ThreadPool pool_;
};

}  // namespace sw::wavesim
