// Local (point-wise) demagnetising field via a constant shape tensor.
//
// For a long thin waveguide whose cross-section (1 nm x 50 nm in the paper)
// is far smaller than every wavelength in play, the non-local part of the
// dipolar interaction along the propagation axis is weak and the demag field
// is well approximated cell-locally by H_d = -Ms * diag(Nx, Ny, Nz) * m with
// the prism shape factors of the cross-section. This is the standard
// reduction used for 1-D waveguide models and keeps long multi-frequency
// runs tractable; DemagNewellField provides the exact non-local field.
#pragma once

#include "mag/field_term.h"
#include "mag/material.h"

namespace sw::mag {

class DemagLocalField final : public FieldTerm {
 public:
  /// `factors` are the shape demag factors (sum must be ~1).
  DemagLocalField(const Material& mat, const Vec3& factors);

  /// Convenience: factors computed from a cuboid of the given full edge
  /// lengths (typically waveguide length x width x thickness).
  static DemagLocalField from_shape(const Material& mat, double lx, double ly,
                                    double lz);

  void accumulate(double t, const VectorField& m,
                  VectorField& H) const override;
  std::string name() const override { return "demag-local"; }

  const Vec3& factors() const { return n_; }

 private:
  double ms_ = 0.0;
  Vec3 n_;
};

}  // namespace sw::mag
