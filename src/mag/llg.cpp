#include "mag/llg.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace sw::mag {

void llg_rhs(const LlgParams& p, const VectorField& m, const VectorField& H,
             VectorField& dmdt) {
  SW_REQUIRE(m.size() == H.size() && m.size() == dmdt.size(),
             "field size mismatch");
  const bool prec = p.precession;
  if (p.alpha_per_cell != nullptr) {
    SW_REQUIRE(p.alpha_per_cell->size() == m.size(),
               "alpha_per_cell size mismatch");
    for (std::size_t c = 0; c < m.size(); ++c) {
      const double a = (*p.alpha_per_cell)[c];
      const double pre = -p.gamma_mu0 / (1.0 + a * a);
      const Vec3 mxh = cross(m[c], H[c]);
      Vec3 rhs = cross(m[c], mxh) * a;
      if (prec) rhs += mxh;
      dmdt[c] = rhs * pre;
    }
    return;
  }
  const double pre = -p.gamma_mu0 / (1.0 + p.alpha * p.alpha);
  const double a = p.alpha;
  for (std::size_t c = 0; c < m.size(); ++c) {
    const Vec3 mxh = cross(m[c], H[c]);
    const Vec3 mxmxh = cross(m[c], mxh);
    Vec3 rhs = mxmxh * a;
    if (prec) rhs += mxh;
    dmdt[c] = rhs * pre;
  }
}

double max_torque(const VectorField& m, const VectorField& H) {
  SW_REQUIRE(m.size() == H.size(), "field size mismatch");
  double mx = 0.0;
  for (std::size_t c = 0; c < m.size(); ++c) {
    mx = std::max(mx, cross(m[c], H[c]).norm2());
  }
  return std::sqrt(mx);
}

}  // namespace sw::mag
