#include "mag/demag_local.h"

#include <cmath>

#include "mag/demag_factors.h"
#include "util/error.h"

namespace sw::mag {

DemagLocalField::DemagLocalField(const Material& mat, const Vec3& factors)
    : ms_(mat.Ms), n_(factors) {
  mat.validate();
  const double tr = factors.x + factors.y + factors.z;
  SW_REQUIRE(std::abs(tr - 1.0) < 1e-3, "demag factors must sum to 1");
  SW_REQUIRE(factors.x >= 0.0 && factors.y >= 0.0 && factors.z >= 0.0,
             "demag factors must be non-negative");
}

DemagLocalField DemagLocalField::from_shape(const Material& mat, double lx,
                                            double ly, double lz) {
  return DemagLocalField(mat, demag_factors(lx, ly, lz));
}

void DemagLocalField::accumulate(double /*t*/, const VectorField& m,
                                 VectorField& H) const {
  SW_REQUIRE(m.size() == H.size(), "field size mismatch");
  for (std::size_t c = 0; c < m.size(); ++c) {
    H[c] += {-ms_ * n_.x * m[c].x, -ms_ * n_.y * m[c].y,
             -ms_ * n_.z * m[c].z};
  }
}

}  // namespace sw::mag
