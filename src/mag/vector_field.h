// A Vec3-valued field over a Mesh, plus the arithmetic the integrators need.
#pragma once

#include <span>
#include <vector>

#include "mag/mesh.h"
#include "mag/vec3.h"

namespace sw::mag {

/// Dense field of Vec3 values, one per mesh cell, stored x-fastest.
class VectorField {
 public:
  VectorField() = default;

  /// Zero-initialised field over `mesh`.
  explicit VectorField(const Mesh& mesh);

  /// Field over `mesh` with every cell set to `fill`.
  VectorField(const Mesh& mesh, const Vec3& fill);

  const Mesh& mesh() const { return mesh_; }
  std::size_t size() const { return data_.size(); }

  Vec3& operator[](std::size_t idx) { return data_[idx]; }
  const Vec3& operator[](std::size_t idx) const { return data_[idx]; }

  Vec3& at(std::size_t i, std::size_t j, std::size_t k) {
    return data_[mesh_.index(i, j, k)];
  }
  const Vec3& at(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[mesh_.index(i, j, k)];
  }

  std::span<Vec3> values() { return data_; }
  std::span<const Vec3> values() const { return data_; }

  /// Set every cell to `v`.
  void fill(const Vec3& v);

  /// Set every cell to zero.
  void zero() { fill({}); }

  /// this += s * other (axpy, the integrator workhorse).
  void add_scaled(const VectorField& other, double s);

  /// this = a + s * b. All fields must share a mesh.
  void assign_sum(const VectorField& a, const VectorField& b, double s);

  /// Renormalise every vector to unit length (LLG norm conservation guard);
  /// zero vectors are left untouched.
  void normalize();

  /// Mean value over all cells.
  Vec3 average() const;

  /// Mean value over cells [begin, end) of flat index.
  Vec3 average_range(std::size_t begin, std::size_t end) const;

  /// Max |v| over cells.
  double max_norm() const;

 private:
  Mesh mesh_;
  std::vector<Vec3> data_;
};

}  // namespace sw::mag
