// Analytic demagnetising factors of a uniformly magnetised rectangular prism
// (Aharoni, J. Appl. Phys. 83, 3432 (1998)). Used both for the local
// thin-film demag approximation and as an oracle for the Newell tensor.
#pragma once

#include "mag/vec3.h"

namespace sw::mag {

/// Demag factor along z of a prism with full edge lengths (lx, ly, lz).
/// The three factors satisfy Nx + Ny + Nz = 1.
double demag_factor_z(double lx, double ly, double lz);

/// All three factors {Nx, Ny, Nz} of the prism.
Vec3 demag_factors(double lx, double ly, double lz);

/// Demag factors of a waveguide cross-section (width x thickness) treated
/// as infinitely long along x: evaluates the Aharoni factors at a large but
/// well-conditioned aspect ratio, clamps the tiny negative residue of the
/// long axis to zero and renormalises the trace to 1.
Vec3 demag_factors_waveguide(double width, double thickness);

}  // namespace sw::mag
