// Uniaxial magnetocrystalline anisotropy field (PMA in the paper).
#pragma once

#include "mag/field_term.h"
#include "mag/material.h"

namespace sw::mag {

/// H_ani = (2*Ku / (mu0*Ms)) * (m . u) * u with easy axis u.
class UniaxialAnisotropyField final : public FieldTerm {
 public:
  explicit UniaxialAnisotropyField(const Material& mat);

  void accumulate(double t, const VectorField& m,
                  VectorField& H) const override;
  std::string name() const override { return "uniaxial-anisotropy"; }

  /// Anisotropy field magnitude Hk = 2*Ku/(mu0*Ms) [A/m].
  double hk() const { return hk_; }

 private:
  double hk_ = 0.0;
  Vec3 axis_{0, 0, 1};
};

}  // namespace sw::mag
