// Stochastic thermal field (Brown 1963): Langevin dynamics at finite
// temperature. Each cell receives an independent Gaussian field with
//
//   <H_i(t) H_j(t')> = 2 alpha kB T / (gamma mu0^2 Ms V) delta_ij delta(t-t')
//
// discretised per integrator step as sigma = sqrt(2 alpha kB T /
// (gamma mu0^2 Ms V dt)). The generator is seeded deterministically so
// finite-temperature runs are exactly reproducible.
//
// Note for adaptive steppers: a white-noise term is formally incompatible
// with error-controlled step adaptation; use fixed-step Euler/Heun (the
// standard practice, matching OOMMF's thetaevolve) when temperature > 0.
#pragma once

#include <cstdint>
#include <random>

#include "mag/field_term.h"
#include "mag/material.h"
#include "mag/mesh.h"

namespace sw::mag {

class ThermalField final : public FieldTerm {
 public:
  /// `dt` must equal the integrator's (fixed) step so the noise variance is
  /// scaled correctly.
  ThermalField(const Mesh& mesh, const Material& mat, double temperature,
               double dt, std::uint64_t seed = 0x5917A5EBu);

  void accumulate(double t, const VectorField& m,
                  VectorField& H) const override;
  std::string name() const override { return "thermal"; }
  bool time_dependent() const override { return true; }
  // Noise does not contribute a well-defined energy; report zero weight.
  double energy_prefactor() const override { return 0.0; }

  /// RMS field per component [A/m].
  double sigma() const { return sigma_; }

  double temperature() const { return temperature_; }

 private:
  Mesh mesh_;
  double temperature_ = 0.0;
  double sigma_ = 0.0;
  std::uint64_t seed_ = 0;
  // The field must be constant within one integrator step (all RHS stages
  // see the same realisation) and refresh between steps: realisations are
  // keyed on the step index derived from t.
  double dt_ = 0.0;
  mutable std::vector<Vec3> current_;
  mutable long current_step_ = -1;

  void refresh(long step) const;
};

}  // namespace sw::mag
