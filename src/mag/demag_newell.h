// Exact non-local demagnetising field via the Newell cell-averaged tensor
// and FFT-accelerated convolution (the method OOMMF's Oxs_Demag uses).
//
// Near offsets use the analytic Newell formulas evaluated in long double
// (the expressions suffer catastrophic cancellation at distance); far
// offsets switch to the point-dipole asymptotic form, whose relative error
// at the crossover radius is below the cancellation noise of the exact
// formula.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "mag/field_term.h"
#include "mag/material.h"
#include "mag/mesh.h"

namespace sw::mag {

/// Newell tensor diagonal element N_xx between two cells of size
/// (dx, dy, dz) whose centres are separated by (X, Y, Z).
double newell_nxx(double X, double Y, double Z, double dx, double dy,
                  double dz);

/// Newell tensor off-diagonal element N_xy for the same configuration.
double newell_nxy(double X, double Y, double Z, double dx, double dy,
                  double dz);

/// Full symmetric tensor {Nxx, Nyy, Nzz, Nxy, Nxz, Nyz} at offset (X, Y, Z).
/// `use_dipole_beyond` selects the asymptotic form when the offset exceeds
/// that many max-cell-size units (0 disables the asymptotic path).
struct DemagTensor {
  double xx = 0, yy = 0, zz = 0, xy = 0, xz = 0, yz = 0;
};
DemagTensor newell_tensor(double X, double Y, double Z, double dx, double dy,
                          double dz, double use_dipole_beyond = 32.0);

class DemagNewellField final : public FieldTerm {
 public:
  DemagNewellField(const Mesh& mesh, const Material& mat);

  void accumulate(double t, const VectorField& m,
                  VectorField& H) const override;
  std::string name() const override { return "demag-newell"; }

  /// Self-interaction tensor diagonal (should match the Aharoni factors of a
  /// single cell); exposed for validation.
  DemagTensor self_tensor() const { return self_; }

 private:
  using Complex = std::complex<double>;

  void build_kernel();
  void fft3(std::vector<Complex>& a, int sign) const;

  Mesh mesh_;
  double ms_ = 0.0;
  std::size_t px_ = 1, py_ = 1, pz_ = 1;  ///< padded dims
  DemagTensor self_;
  // FFT'd kernel, 6 tensor components (with the -1 of H = -N*M folded in).
  std::vector<Complex> kxx_, kyy_, kzz_, kxy_, kxz_, kyz_;
  // Scratch buffers reused across calls (solver is single-threaded per sim).
  mutable std::vector<Complex> mx_, my_, mz_;
};

}  // namespace sw::mag
