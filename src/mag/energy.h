// Energy bookkeeping for field terms.
#pragma once

#include <string>
#include <vector>

#include "mag/field_term.h"
#include "mag/material.h"
#include "mag/mesh.h"

namespace sw::mag {

/// Energy of one term [J].
struct TermEnergy {
  std::string name;
  double energy = 0.0;
};

/// Energy of a single field term at time t:
///   E = -pf * mu0 * Ms * sum_cells (m . H_term) * V_cell.
double term_energy(const FieldTerm& term, const Material& mat,
                   const VectorField& m, double t);

/// Energies of a set of terms plus their total.
std::vector<TermEnergy> energy_table(
    const std::vector<const FieldTerm*>& terms, const Material& mat,
    const VectorField& m, double t);

}  // namespace sw::mag
