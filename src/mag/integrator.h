// Explicit time integrators for the LLG equation.
//
// All steppers advance a VectorField state through a caller-supplied RHS
// functor and renormalise the magnetisation afterwards (the LLG flow
// conserves |m| exactly; renormalisation removes the integrator's drift).
#pragma once

#include <functional>
#include <string>

#include "mag/vector_field.h"

namespace sw::mag {

/// RHS evaluation: dmdt = f(t, m). Implementations must not retain refs.
using RhsFn =
    std::function<void(double t, const VectorField& m, VectorField& dmdt)>;

enum class Stepper {
  kEuler,   ///< 1st order, cheapest per step, strict dt limits
  kHeun,    ///< 2nd order (OOMMF's default RungeKuttaEvolve rk2)
  kRk4,     ///< classic 4th order
  kRkf54,   ///< Runge-Kutta-Fehlberg 4(5), adaptive
};

Stepper stepper_from_name(const std::string& name);
const char* stepper_name(Stepper s);

/// Fixed-step integrator state and statistics.
struct StepStats {
  std::size_t steps_taken = 0;
  std::size_t steps_rejected = 0;  ///< adaptive only
  std::size_t rhs_evals = 0;
  double last_dt = 0.0;
};

/// Integrator configuration.
struct IntegratorOptions {
  Stepper stepper = Stepper::kRk4;
  double dt = 1e-13;          ///< fixed step, or initial step when adaptive
  double dt_min = 1e-17;      ///< adaptive floor (throws below)
  double dt_max = 1e-12;      ///< adaptive ceiling
  double tolerance = 1e-5;    ///< adaptive: max |error| per step (unit-m units)
  bool renormalize = true;    ///< renormalise |m| after each step
};

/// Time stepper owning its scratch fields. Reusable across runs on the same
/// mesh; create a new one when the mesh changes.
class Integrator {
 public:
  explicit Integrator(const IntegratorOptions& opts) : opts_(opts) {}

  /// Advance `m` in place from t to t_end, calling `rhs` as needed.
  /// Returns the accumulated statistics (cumulative across calls).
  const StepStats& advance(const RhsFn& rhs, VectorField& m, double t,
                           double t_end);

  const StepStats& stats() const { return stats_; }
  const IntegratorOptions& options() const { return opts_; }

 private:
  void ensure_scratch(const VectorField& m);
  void step_euler(const RhsFn& rhs, VectorField& m, double t, double dt);
  void step_heun(const RhsFn& rhs, VectorField& m, double t, double dt);
  void step_rk4(const RhsFn& rhs, VectorField& m, double t, double dt);
  /// Returns the max-norm error estimate of the embedded pair.
  double step_rkf54(const RhsFn& rhs, const VectorField& m, VectorField& out,
                    double t, double dt);

  IntegratorOptions opts_;
  StepStats stats_;
  // Scratch stages (k1..k6, plus temporaries).
  VectorField k1_, k2_, k3_, k4_, k5_, k6_, tmp_, out_;
};

}  // namespace sw::mag
