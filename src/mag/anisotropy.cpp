#include "mag/anisotropy.h"

#include "util/error.h"

namespace sw::mag {

UniaxialAnisotropyField::UniaxialAnisotropyField(const Material& mat) {
  mat.validate();
  hk_ = mat.anisotropy_field();
  axis_ = mat.easy_axis.normalized();
}

void UniaxialAnisotropyField::accumulate(double /*t*/, const VectorField& m,
                                         VectorField& H) const {
  SW_REQUIRE(m.size() == H.size(), "field size mismatch");
  for (std::size_t c = 0; c < m.size(); ++c) {
    H[c] += axis_ * (hk_ * dot(m[c], axis_));
  }
}

}  // namespace sw::mag
