#include "mag/probe.h"

#include <algorithm>

#include "util/error.h"

namespace sw::mag {

Probe::Probe(std::string probe_name, const Mesh& mesh, double x_center,
             double width, double sample_interval)
    : name_(std::move(probe_name)),
      mesh_(mesh),
      x_center_(x_center),
      interval_(sample_interval) {
  SW_REQUIRE(sample_interval > 0.0, "sample interval must be positive");
  SW_REQUIRE(width >= 0.0, "width must be non-negative");
  const double x0 = x_center - 0.5 * width;
  const double x1 = x_center + 0.5 * width;
  SW_REQUIRE(x1 >= 0.0 && x0 <= mesh.size_x(), "probe outside the mesh");
  i_begin_ = mesh.cell_at_x(std::max(x0, 0.0));
  i_end_ = std::min<std::size_t>(mesh.cell_at_x(x1) + 1, mesh.nx());
  SW_ASSERT(i_begin_ < i_end_, "empty probe window");
}

void Probe::maybe_sample(double t, const VectorField& m) {
  // Relative tolerance absorbs rounding drift between the solver's time
  // accumulation and the k * interval grid.
  if (t < next_deadline() - 1e-9 * interval_) return;
  sample(t, m);
  // Skip any deadlines a coarse caller jumped over.
  next_index_ =
      static_cast<std::size_t>(std::floor(t / interval_ + 1e-9)) + 1;
}

void Probe::sample(double t, const VectorField& m) {
  // Average over the x-window across the full cross-section.
  Vec3 acc;
  std::size_t count = 0;
  const std::size_t nx = mesh_.nx(), ny = mesh_.ny(), nz = mesh_.nz();
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      const std::size_t row = nx * (j + ny * k);
      for (std::size_t i = i_begin_; i < i_end_; ++i) {
        acc += m[row + i];
        ++count;
      }
    }
  }
  ProbeSample s;
  s.t = t;
  s.m = acc * (1.0 / static_cast<double>(count));
  samples_.push_back(s);
}

std::vector<double> Probe::component(char axis) const {
  std::vector<double> out(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    switch (axis) {
      case 'x': out[i] = samples_[i].m.x; break;
      case 'y': out[i] = samples_[i].m.y; break;
      case 'z': out[i] = samples_[i].m.z; break;
      default: SW_REQUIRE(false, "axis must be x, y or z");
    }
  }
  return out;
}

std::vector<double> Probe::times() const {
  std::vector<double> out(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) out[i] = samples_[i].t;
  return out;
}

void Probe::clear() {
  samples_.clear();
  next_index_ = 0;
}

}  // namespace sw::mag
