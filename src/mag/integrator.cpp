#include "mag/integrator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/strings.h"

namespace sw::mag {

Stepper stepper_from_name(const std::string& name) {
  const std::string t = sw::util::to_lower(name);
  if (t == "euler") return Stepper::kEuler;
  if (t == "heun" || t == "rk2") return Stepper::kHeun;
  if (t == "rk4") return Stepper::kRk4;
  if (t == "rkf54" || t == "rkf45" || t == "adaptive") return Stepper::kRkf54;
  SW_REQUIRE(false, "unknown stepper: " + name);
}

const char* stepper_name(Stepper s) {
  switch (s) {
    case Stepper::kEuler: return "euler";
    case Stepper::kHeun: return "heun";
    case Stepper::kRk4: return "rk4";
    case Stepper::kRkf54: return "rkf54";
  }
  return "unknown";
}

void Integrator::ensure_scratch(const VectorField& m) {
  if (k1_.size() != m.size()) {
    k1_ = VectorField(m.mesh());
    k2_ = VectorField(m.mesh());
    k3_ = VectorField(m.mesh());
    k4_ = VectorField(m.mesh());
    k5_ = VectorField(m.mesh());
    k6_ = VectorField(m.mesh());
    tmp_ = VectorField(m.mesh());
    out_ = VectorField(m.mesh());
  }
}

void Integrator::step_euler(const RhsFn& rhs, VectorField& m, double t,
                            double dt) {
  rhs(t, m, k1_);
  stats_.rhs_evals += 1;
  m.add_scaled(k1_, dt);
}

void Integrator::step_heun(const RhsFn& rhs, VectorField& m, double t,
                           double dt) {
  rhs(t, m, k1_);
  tmp_.assign_sum(m, k1_, dt);
  rhs(t + dt, tmp_, k2_);
  stats_.rhs_evals += 2;
  m.add_scaled(k1_, 0.5 * dt);
  m.add_scaled(k2_, 0.5 * dt);
}

void Integrator::step_rk4(const RhsFn& rhs, VectorField& m, double t,
                          double dt) {
  rhs(t, m, k1_);
  tmp_.assign_sum(m, k1_, 0.5 * dt);
  rhs(t + 0.5 * dt, tmp_, k2_);
  tmp_.assign_sum(m, k2_, 0.5 * dt);
  rhs(t + 0.5 * dt, tmp_, k3_);
  tmp_.assign_sum(m, k3_, dt);
  rhs(t + dt, tmp_, k4_);
  stats_.rhs_evals += 4;
  m.add_scaled(k1_, dt / 6.0);
  m.add_scaled(k2_, dt / 3.0);
  m.add_scaled(k3_, dt / 3.0);
  m.add_scaled(k4_, dt / 6.0);
}

double Integrator::step_rkf54(const RhsFn& rhs, const VectorField& m,
                              VectorField& out, double t, double dt) {
  // Runge-Kutta-Fehlberg 4(5) coefficients.
  static constexpr double a2 = 0.25;
  static constexpr double b31 = 3.0 / 32.0, b32 = 9.0 / 32.0;
  static constexpr double b41 = 1932.0 / 2197.0, b42 = -7200.0 / 2197.0,
                          b43 = 7296.0 / 2197.0;
  static constexpr double b51 = 439.0 / 216.0, b52 = -8.0,
                          b53 = 3680.0 / 513.0, b54 = -845.0 / 4104.0;
  static constexpr double b61 = -8.0 / 27.0, b62 = 2.0,
                          b63 = -3544.0 / 2565.0, b64 = 1859.0 / 4104.0,
                          b65 = -11.0 / 40.0;
  // 5th-order solution weights.
  static constexpr double c1 = 16.0 / 135.0, c3 = 6656.0 / 12825.0,
                          c4 = 28561.0 / 56430.0, c5 = -9.0 / 50.0,
                          c6 = 2.0 / 55.0;
  // Error weights (5th minus 4th).
  static constexpr double e1 = 16.0 / 135.0 - 25.0 / 216.0;
  static constexpr double e3 = 6656.0 / 12825.0 - 1408.0 / 2565.0;
  static constexpr double e4 = 28561.0 / 56430.0 - 2197.0 / 4104.0;
  static constexpr double e5 = -9.0 / 50.0 + 1.0 / 5.0;
  static constexpr double e6 = 2.0 / 55.0;

  rhs(t, m, k1_);
  tmp_.assign_sum(m, k1_, a2 * dt);
  rhs(t + a2 * dt, tmp_, k2_);

  tmp_.assign_sum(m, k1_, b31 * dt);
  tmp_.add_scaled(k2_, b32 * dt);
  rhs(t + 0.375 * dt, tmp_, k3_);

  tmp_.assign_sum(m, k1_, b41 * dt);
  tmp_.add_scaled(k2_, b42 * dt);
  tmp_.add_scaled(k3_, b43 * dt);
  rhs(t + 12.0 / 13.0 * dt, tmp_, k4_);

  tmp_.assign_sum(m, k1_, b51 * dt);
  tmp_.add_scaled(k2_, b52 * dt);
  tmp_.add_scaled(k3_, b53 * dt);
  tmp_.add_scaled(k4_, b54 * dt);
  rhs(t + dt, tmp_, k5_);

  tmp_.assign_sum(m, k1_, b61 * dt);
  tmp_.add_scaled(k2_, b62 * dt);
  tmp_.add_scaled(k3_, b63 * dt);
  tmp_.add_scaled(k4_, b64 * dt);
  tmp_.add_scaled(k5_, b65 * dt);
  rhs(t + 0.5 * dt, tmp_, k6_);

  stats_.rhs_evals += 6;

  out.assign_sum(m, k1_, c1 * dt);
  out.add_scaled(k3_, c3 * dt);
  out.add_scaled(k4_, c4 * dt);
  out.add_scaled(k5_, c5 * dt);
  out.add_scaled(k6_, c6 * dt);

  // Error estimate: max over cells of |e . k| * dt.
  double err = 0.0;
  for (std::size_t c = 0; c < m.size(); ++c) {
    const Vec3 e = k1_[c] * e1 + k3_[c] * e3 + k4_[c] * e4 + k5_[c] * e5 +
                   k6_[c] * e6;
    err = std::max(err, e.norm2());
  }
  return std::sqrt(err) * dt;
}

const StepStats& Integrator::advance(const RhsFn& rhs, VectorField& m,
                                     double t, double t_end) {
  SW_REQUIRE(t_end >= t, "t_end before t");
  ensure_scratch(m);

  if (opts_.stepper != Stepper::kRkf54) {
    // Fixed-step loop with a final partial step landing exactly on t_end.
    const double dt0 = opts_.dt;
    SW_REQUIRE(dt0 > 0.0, "dt must be positive");
    while (t < t_end) {
      const double dt = std::min(dt0, t_end - t);
      switch (opts_.stepper) {
        case Stepper::kEuler: step_euler(rhs, m, t, dt); break;
        case Stepper::kHeun: step_heun(rhs, m, t, dt); break;
        case Stepper::kRk4: step_rk4(rhs, m, t, dt); break;
        case Stepper::kRkf54: break;  // unreachable
      }
      if (opts_.renormalize) m.normalize();
      t += dt;
      stats_.steps_taken += 1;
      stats_.last_dt = dt;
    }
    return stats_;
  }

  // Adaptive loop.
  double dt = std::clamp(opts_.dt, opts_.dt_min, opts_.dt_max);
  while (t < t_end) {
    dt = std::min(dt, t_end - t);
    const double err = step_rkf54(rhs, m, out_, t, dt);
    if (err <= opts_.tolerance || dt <= opts_.dt_min * (1.0 + 1e-12)) {
      m = out_;
      if (opts_.renormalize) m.normalize();
      t += dt;
      stats_.steps_taken += 1;
      stats_.last_dt = dt;
    } else {
      stats_.steps_rejected += 1;
    }
    // PI-free classic step-size update with safety factor.
    const double scale =
        (err > 0.0) ? 0.9 * std::pow(opts_.tolerance / err, 0.2) : 2.0;
    dt = std::clamp(dt * std::clamp(scale, 0.2, 4.0), opts_.dt_min,
                    opts_.dt_max);
    SW_REQUIRE(stats_.steps_rejected < 1000000, "adaptive stepper stalled");
  }
  return stats_;
}

}  // namespace sw::mag
