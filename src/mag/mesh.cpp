#include "mag/mesh.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace sw::mag {

Mesh::Mesh(std::size_t nx, std::size_t ny, std::size_t nz, double dx,
           double dy, double dz)
    : nx_(nx), ny_(ny), nz_(nz), dx_(dx), dy_(dy), dz_(dz) {
  SW_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "cell counts must be >= 1");
  SW_REQUIRE(dx > 0.0 && dy > 0.0 && dz > 0.0, "cell sizes must be > 0");
}

std::size_t Mesh::cell_at_x(double x) const {
  const double fi = std::floor(x / dx_);
  const long i = std::clamp<long>(static_cast<long>(fi), 0,
                                  static_cast<long>(nx_) - 1);
  return static_cast<std::size_t>(i);
}

}  // namespace sw::mag
