#include "mag/material.h"

#include <cmath>

#include "util/constants.h"
#include "util/error.h"
#include "util/strings.h"

namespace sw::mag {

using sw::util::kGammaMu0;
using sw::util::kMu0;

double Material::anisotropy_field() const {
  SW_REQUIRE(Ms > 0.0, "Ms must be positive");
  return 2.0 * Ku / (kMu0 * Ms);
}

double Material::exchange_length() const {
  SW_REQUIRE(Ms > 0.0, "Ms must be positive");
  return std::sqrt(2.0 * Aex / (kMu0 * Ms * Ms));
}

double Material::omega_m() const { return kGammaMu0 * Ms; }

void Material::validate() const {
  SW_REQUIRE(Ms > 0.0, "Ms must be positive");
  SW_REQUIRE(Aex > 0.0, "Aex must be positive");
  SW_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha outside [0, 1]");
  SW_REQUIRE(Ku >= 0.0, "Ku must be non-negative");
  const double n = easy_axis.norm();
  SW_REQUIRE(std::abs(n - 1.0) < 1e-6, "easy axis must be a unit vector");
}

Material make_fecob() {
  Material m;
  m.name = "Fe60Co20B20";
  m.Ms = 1.1e6;
  m.Aex = 18.5e-12;
  m.alpha = 0.004;
  m.Ku = 8.3177e5;
  m.easy_axis = {0, 0, 1};
  return m;
}

Material make_yig() {
  Material m;
  m.name = "YIG";
  m.Ms = 1.4e5;
  m.Aex = 3.5e-12;
  m.alpha = 2e-4;
  m.Ku = 0.0;
  m.easy_axis = {0, 0, 1};
  return m;
}

Material make_permalloy() {
  Material m;
  m.name = "Py";
  m.Ms = 8.0e5;
  m.Aex = 13e-12;
  m.alpha = 0.01;
  m.Ku = 0.0;
  m.easy_axis = {0, 0, 1};
  return m;
}

Material material_by_name(const std::string& name) {
  const std::string t = sw::util::to_lower(name);
  if (t == "fecob" || t == "fe60co20b20" || t == "fecob-pma") {
    return make_fecob();
  }
  if (t == "yig") return make_yig();
  if (t == "py" || t == "permalloy" || t == "nife") return make_permalloy();
  SW_REQUIRE(false, "unknown material: " + name);
}

}  // namespace sw::mag
