#include "mag/demag_newell.h"

#include <algorithm>
#include <cmath>

#include "fft/fft.h"
#include "util/constants.h"
#include "util/error.h"

namespace sw::mag {

using sw::util::kPi;

namespace {

// Newell, Williams & Dunlop (1993) auxiliary functions, evaluated in long
// double because the 27-point stencil cancels ~ (d/R)^6 of the magnitude.
long double newell_f(long double x, long double y, long double z) {
  const long double x2 = x * x, y2 = y * y, z2 = z * z;
  const long double r = std::sqrt(x2 + y2 + z2);
  long double f = (1.0L / 6.0L) * (2.0L * x2 - y2 - z2) * r;
  if (y != 0.0L && x2 + z2 > 0.0L) {
    f += 0.5L * y * (z2 - x2) * std::asinh(y / std::sqrt(x2 + z2));
  }
  if (z != 0.0L && x2 + y2 > 0.0L) {
    f += 0.5L * z * (y2 - x2) * std::asinh(z / std::sqrt(x2 + y2));
  }
  if (x != 0.0L && y != 0.0L && z != 0.0L) {
    f -= x * y * z * std::atan(y * z / (x * r));
  }
  return f;
}

long double newell_g(long double x, long double y, long double z) {
  const long double x2 = x * x, y2 = y * y, z2 = z * z;
  const long double r = std::sqrt(x2 + y2 + z2);
  long double g = -x * y * r / 3.0L;
  if (x != 0.0L && y != 0.0L && z != 0.0L && x2 + y2 > 0.0L) {
    g += x * y * z * std::asinh(z / std::sqrt(x2 + y2));
  }
  if (y != 0.0L && y2 + z2 > 0.0L) {
    g += (y / 6.0L) * (3.0L * z2 - y2) * std::asinh(x / std::sqrt(y2 + z2));
  }
  if (x != 0.0L && x2 + z2 > 0.0L) {
    g += (x / 6.0L) * (3.0L * z2 - x2) * std::asinh(y / std::sqrt(x2 + z2));
  }
  if (z != 0.0L) {
    g -= (z * z2 / 6.0L) * std::atan(x * y / (z * r));
  }
  if (y != 0.0L && z != 0.0L) {
    g -= (z * y2 / 2.0L) * std::atan(x * z / (y * r));
  }
  if (x != 0.0L && z != 0.0L) {
    g -= (z * x2 / 2.0L) * std::atan(y * z / (x * r));
  }
  return g;
}

// 27-point second-difference stencil of `fn` around (X, Y, Z); weights are
// (-1, 2, -1) per axis (the collapsed form of Newell's 64-term sum).
template <typename Fn>
double stencil27(Fn fn, double X, double Y, double Z, double dx, double dy,
                 double dz) {
  static constexpr int off[3] = {-1, 0, 1};
  static constexpr long double wgt[3] = {-1.0L, 2.0L, -1.0L};
  long double acc = 0.0L;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 3; ++c) {
        const long double w = wgt[a] * wgt[b] * wgt[c];
        acc += w * fn(static_cast<long double>(X) + off[a] * static_cast<long double>(dx),
                      static_cast<long double>(Y) + off[b] * static_cast<long double>(dy),
                      static_cast<long double>(Z) + off[c] * static_cast<long double>(dz));
      }
    }
  }
  return static_cast<double>(acc);
}

}  // namespace

double newell_nxx(double X, double Y, double Z, double dx, double dy,
                  double dz) {
  const double scale = 1.0 / (4.0 * kPi * dx * dy * dz);
  return scale * stencil27(newell_f, X, Y, Z, dx, dy, dz);
}

double newell_nxy(double X, double Y, double Z, double dx, double dy,
                  double dz) {
  const double scale = 1.0 / (4.0 * kPi * dx * dy * dz);
  return scale * stencil27(newell_g, X, Y, Z, dx, dy, dz);
}

DemagTensor newell_tensor(double X, double Y, double Z, double dx, double dy,
                          double dz, double use_dipole_beyond) {
  DemagTensor n;
  const double r2 = X * X + Y * Y + Z * Z;
  const double dmax = std::max({dx, dy, dz});
  if (use_dipole_beyond > 0.0 &&
      r2 > use_dipole_beyond * use_dipole_beyond * dmax * dmax) {
    // Point-dipole asymptotics: N = (V / 4 pi r^3) (I - 3 rr^T / r^2).
    const double r = std::sqrt(r2);
    const double v = dx * dy * dz;
    const double c = v / (4.0 * kPi * r2 * r);
    const double i3 = 3.0 / r2;
    n.xx = c * (1.0 - i3 * X * X);
    n.yy = c * (1.0 - i3 * Y * Y);
    n.zz = c * (1.0 - i3 * Z * Z);
    n.xy = c * (-i3 * X * Y);
    n.xz = c * (-i3 * X * Z);
    n.yz = c * (-i3 * Y * Z);
    return n;
  }
  n.xx = newell_nxx(X, Y, Z, dx, dy, dz);
  n.yy = newell_nxx(Y, Z, X, dy, dz, dx);
  n.zz = newell_nxx(Z, X, Y, dz, dx, dy);
  n.xy = newell_nxy(X, Y, Z, dx, dy, dz);
  n.xz = newell_nxy(X, Z, Y, dx, dz, dy);
  n.yz = newell_nxy(Y, Z, X, dy, dz, dx);
  return n;
}

DemagNewellField::DemagNewellField(const Mesh& mesh, const Material& mat)
    : mesh_(mesh), ms_(mat.Ms) {
  mat.validate();
  px_ = mesh.nx() > 1 ? sw::fft::next_pow2(2 * mesh.nx()) : 1;
  py_ = mesh.ny() > 1 ? sw::fft::next_pow2(2 * mesh.ny()) : 1;
  pz_ = mesh.nz() > 1 ? sw::fft::next_pow2(2 * mesh.nz()) : 1;
  build_kernel();
}

void DemagNewellField::fft3(std::vector<Complex>& a, int sign) const {
  // Separable 3-D FFT: 1-D transforms along each axis with stride gathers.
  // Dimensions equal to 1 are skipped.
  auto pass = [&](std::size_t n, std::size_t stride, std::size_t count,
                  std::size_t block) {
    if (n <= 1) return;
    std::vector<Complex> line(n);
    for (std::size_t c = 0; c < count; ++c) {
      for (std::size_t b = 0; b < block; ++b) {
        const std::size_t base = c * stride * n + b;
        for (std::size_t i = 0; i < n; ++i) line[i] = a[base + i * stride];
        if (sign < 0) {
          sw::fft::fft(line);
        } else {
          sw::fft::ifft(line);
        }
        for (std::size_t i = 0; i < n; ++i) a[base + i * stride] = line[i];
      }
    }
  };
  // x-axis: contiguous lines.
  pass(px_, 1, py_ * pz_, 1);
  // y-axis: stride px_, one block of px_ per z-slab.
  pass(py_, px_, pz_, px_);
  // z-axis: stride px_*py_.
  pass(pz_, px_ * py_, 1, px_ * py_);
}

void DemagNewellField::build_kernel() {
  const std::size_t total = px_ * py_ * pz_;
  kxx_.assign(total, {});
  kyy_.assign(total, {});
  kzz_.assign(total, {});
  kxy_.assign(total, {});
  kxz_.assign(total, {});
  kyz_.assign(total, {});

  const long ox_max = static_cast<long>(mesh_.nx()) - 1;
  const long oy_max = static_cast<long>(mesh_.ny()) - 1;
  const long oz_max = static_cast<long>(mesh_.nz()) - 1;

  for (long oz = -oz_max; oz <= oz_max; ++oz) {
    for (long oy = -oy_max; oy <= oy_max; ++oy) {
      for (long ox = -ox_max; ox <= ox_max; ++ox) {
        const DemagTensor n = newell_tensor(
            static_cast<double>(ox) * mesh_.dx(),
            static_cast<double>(oy) * mesh_.dy(),
            static_cast<double>(oz) * mesh_.dz(), mesh_.dx(), mesh_.dy(),
            mesh_.dz());
        if (ox == 0 && oy == 0 && oz == 0) self_ = n;
        const std::size_t ix =
            static_cast<std::size_t>((ox + static_cast<long>(px_)) %
                                     static_cast<long>(px_));
        const std::size_t iy =
            static_cast<std::size_t>((oy + static_cast<long>(py_)) %
                                     static_cast<long>(py_));
        const std::size_t iz =
            static_cast<std::size_t>((oz + static_cast<long>(pz_)) %
                                     static_cast<long>(pz_));
        const std::size_t idx = ix + px_ * (iy + py_ * iz);
        // Fold the minus sign of H = -N*M into the kernel.
        kxx_[idx] = -n.xx;
        kyy_[idx] = -n.yy;
        kzz_[idx] = -n.zz;
        kxy_[idx] = -n.xy;
        kxz_[idx] = -n.xz;
        kyz_[idx] = -n.yz;
      }
    }
  }

  fft3(kxx_, -1);
  fft3(kyy_, -1);
  fft3(kzz_, -1);
  fft3(kxy_, -1);
  fft3(kxz_, -1);
  fft3(kyz_, -1);
}

void DemagNewellField::accumulate(double /*t*/, const VectorField& m,
                                  VectorField& H) const {
  SW_REQUIRE(m.mesh() == mesh_, "field/mesh mismatch");
  const std::size_t total = px_ * py_ * pz_;
  mx_.assign(total, {});
  my_.assign(total, {});
  mz_.assign(total, {});

  const std::size_t nx = mesh_.nx(), ny = mesh_.ny(), nz = mesh_.nz();
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t i = 0; i < nx; ++i) {
        const Vec3& v = m[mesh_.index(i, j, k)];
        const std::size_t p = i + px_ * (j + py_ * k);
        mx_[p] = v.x * ms_;
        my_[p] = v.y * ms_;
        mz_[p] = v.z * ms_;
      }
    }
  }

  fft3(mx_, -1);
  fft3(my_, -1);
  fft3(mz_, -1);

  for (std::size_t p = 0; p < total; ++p) {
    const Complex ax = mx_[p], ay = my_[p], az = mz_[p];
    mx_[p] = kxx_[p] * ax + kxy_[p] * ay + kxz_[p] * az;
    my_[p] = kxy_[p] * ax + kyy_[p] * ay + kyz_[p] * az;
    mz_[p] = kxz_[p] * ax + kyz_[p] * ay + kzz_[p] * az;
  }

  fft3(mx_, +1);
  fft3(my_, +1);
  fft3(mz_, +1);

  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t p = i + px_ * (j + py_ * k);
        H[mesh_.index(i, j, k)] +=
            {mx_[p].real(), my_[p].real(), mz_[p].real()};
      }
    }
  }
}

}  // namespace sw::mag
