#include "mag/antenna.h"

#include <algorithm>
#include <cmath>

#include "util/constants.h"
#include "util/error.h"

namespace sw::mag {

using sw::util::kTwoPi;

double Antenna::drive(double t) const {
  if (t < t_on) return 0.0;
  if (t_off >= 0.0 && t > t_off) return 0.0;
  double env = 1.0;
  if (ramp > 0.0) {
    if (t < t_on + ramp) env = (t - t_on) / ramp;
    if (t_off >= 0.0 && t > t_off - ramp) {
      env = std::min(env, (t_off - t) / ramp);
    }
  }
  return env * std::sin(kTwoPi * frequency * t + phase);
}

void AntennaField::add(const Antenna& a) {
  SW_REQUIRE(a.width > 0.0, "antenna width must be positive");
  SW_REQUIRE(a.frequency >= 0.0, "antenna frequency must be non-negative");
  const double x0 = a.x_center - 0.5 * a.width;
  const double x1 = a.x_center + 0.5 * a.width;
  SW_REQUIRE(x1 > 0.0 && x0 < mesh_.size_x(),
             "antenna footprint outside the mesh");
  Placed p;
  p.ant = a;
  p.ant.direction = a.direction.normalized();
  p.i_begin = mesh_.cell_at_x(std::max(x0, 0.0));
  // cell_at_x clamps; use the cell whose centre is still inside [x0, x1).
  p.i_end = std::min<std::size_t>(mesh_.cell_at_x(x1) + 1, mesh_.nx());
  SW_ASSERT(p.i_begin < p.i_end, "empty antenna footprint");
  antennas_.push_back(p);
}

void AntennaField::accumulate(double t, const VectorField& /*m*/,
                              VectorField& H) const {
  const std::size_t nx = mesh_.nx();
  const std::size_t ny = mesh_.ny();
  const std::size_t nz = mesh_.nz();
  for (const auto& p : antennas_) {
    const double d = p.ant.drive(t);
    if (d == 0.0) continue;
    const Vec3 h = p.ant.direction * (p.ant.amplitude * d);
    for (std::size_t k = 0; k < nz; ++k) {
      for (std::size_t j = 0; j < ny; ++j) {
        const std::size_t row = nx * (j + ny * k);
        for (std::size_t i = p.i_begin; i < p.i_end; ++i) {
          H[row + i] += h;
        }
      }
    }
  }
}

}  // namespace sw::mag
