#include "mag/exchange.h"

#include "util/constants.h"
#include "util/error.h"

namespace sw::mag {

using sw::util::kMu0;

ExchangeField::ExchangeField(const Mesh& mesh, const Material& mat)
    : mesh_(mesh) {
  mat.validate();
  prefactor_ = 2.0 * mat.Aex / (kMu0 * mat.Ms);
  inv_dx2_ = 1.0 / (mesh.dx() * mesh.dx());
  inv_dy2_ = 1.0 / (mesh.dy() * mesh.dy());
  inv_dz2_ = 1.0 / (mesh.dz() * mesh.dz());
}

void ExchangeField::accumulate(double /*t*/, const VectorField& m,
                               VectorField& H) const {
  SW_REQUIRE(m.mesh() == mesh_, "field/mesh mismatch");
  const std::size_t nx = mesh_.nx();
  const std::size_t ny = mesh_.ny();
  const std::size_t nz = mesh_.nz();

  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t c = mesh_.index(i, j, k);
        const Vec3& mc = m[c];
        Vec3 lap;

        // Neumann boundaries: missing neighbours mirror the centre cell,
        // which zeroes their contribution to the second difference.
        if (nx > 1) {
          const Vec3& xm = (i > 0) ? m[c - 1] : mc;
          const Vec3& xp = (i + 1 < nx) ? m[c + 1] : mc;
          lap += (xm + xp - 2.0 * mc) * inv_dx2_;
        }
        if (ny > 1) {
          const Vec3& ym = (j > 0) ? m[c - nx] : mc;
          const Vec3& yp = (j + 1 < ny) ? m[c + nx] : mc;
          lap += (ym + yp - 2.0 * mc) * inv_dy2_;
        }
        if (nz > 1) {
          const std::size_t stride = nx * ny;
          const Vec3& zm = (k > 0) ? m[c - stride] : mc;
          const Vec3& zp = (k + 1 < nz) ? m[c + stride] : mc;
          lap += (zm + zp - 2.0 * mc) * inv_dz2_;
        }

        H[c] += lap * prefactor_;
      }
    }
  }
}

}  // namespace sw::mag
