#include "mag/thermal.h"

#include <cmath>

#include "util/constants.h"
#include "util/error.h"

namespace sw::mag {

using sw::util::kBoltzmann;
using sw::util::kGammaMu0;
using sw::util::kMu0;

ThermalField::ThermalField(const Mesh& mesh, const Material& mat,
                           double temperature, double dt, std::uint64_t seed)
    : mesh_(mesh), temperature_(temperature), seed_(seed), dt_(dt) {
  mat.validate();
  SW_REQUIRE(temperature >= 0.0, "temperature must be non-negative");
  SW_REQUIRE(dt > 0.0, "dt must be positive");
  const double v = mesh.cell_volume();
  // Brown's fluctuation-dissipation result, gamma in LL convention.
  sigma_ = std::sqrt(2.0 * mat.alpha * kBoltzmann * temperature /
                     (kGammaMu0 * kMu0 * mat.Ms * v * dt));
  current_.resize(mesh.cell_count());
}

void ThermalField::refresh(long step) const {
  if (step == current_step_) return;
  current_step_ = step;
  // Counter-based seeding: one engine per (seed, step) pair makes the
  // realisation independent of evaluation order and reproducible across
  // reruns and thread layouts.
  std::mt19937_64 rng(seed_ ^ (0x9E3779B97F4A7C15ull *
                               static_cast<std::uint64_t>(step + 1)));
  std::normal_distribution<double> gauss(0.0, sigma_);
  for (auto& h : current_) {
    h = {gauss(rng), gauss(rng), gauss(rng)};
  }
}

void ThermalField::accumulate(double t, const VectorField& /*m*/,
                              VectorField& H) const {
  if (temperature_ == 0.0 || sigma_ == 0.0) return;
  SW_REQUIRE(H.size() == current_.size(), "field size mismatch");
  // All RHS stages inside step k (t in [k dt, (k+1) dt)) see one frozen
  // realisation; adding 1e-12*dt guards the k*dt boundary itself.
  const long step = static_cast<long>(std::floor(t / dt_ + 1e-12));
  refresh(step);
  for (std::size_t c = 0; c < H.size(); ++c) H[c] += current_[c];
}

}  // namespace sw::mag
