// Simulation orchestrator: owns the mesh, material, field terms, integrator
// and probes, and exposes run/relax entry points (OOMMF driver analogue).
#pragma once

#include <memory>
#include <vector>

#include "mag/field_term.h"
#include "mag/integrator.h"
#include "mag/llg.h"
#include "mag/material.h"
#include "mag/mesh.h"
#include "mag/probe.h"
#include "mag/vector_field.h"

namespace sw::mag {

class Simulation {
 public:
  /// Initial magnetisation is uniform along the material's easy axis.
  Simulation(const Mesh& mesh, const Material& mat,
             const IntegratorOptions& opts = {});

  const Mesh& mesh() const { return mesh_; }
  const Material& material() const { return mat_; }
  double time() const { return t_; }

  VectorField& magnetization() { return m_; }
  const VectorField& magnetization() const { return m_; }

  /// Add an effective-field term; the simulation takes ownership.
  /// Returns a reference to the added term for later inspection.
  template <typename Term, typename... Args>
  Term& add_term(Args&&... args) {
    auto term = std::make_unique<Term>(std::forward<Args>(args)...);
    Term& ref = *term;
    terms_.push_back(std::move(term));
    return ref;
  }

  /// Add a probe recording an x-window average every `sample_interval`.
  Probe& add_probe(std::string name, double x_center, double width,
                   double sample_interval);

  std::vector<Probe>& probes() { return probes_; }
  const std::vector<Probe>& probes() const { return probes_; }

  /// Install a per-cell Gilbert damping profile (absorbing boundaries);
  /// pass an empty vector to revert to the material's uniform alpha.
  void set_damping_profile(std::vector<double> alpha_per_cell);

  /// Graded absorbing regions: damping ramps quadratically from the material
  /// alpha to `alpha_max` over `width` metres at both x ends of the mesh.
  void add_absorbing_ends(double width, double alpha_max = 0.5);

  /// Evaluate the total effective field (A/m) at time t into `H`.
  void effective_field(double t, const VectorField& m, VectorField& H) const;

  /// Advance the dynamics to `t_end`, sampling probes as deadlines pass.
  void run_until(double t_end);

  /// Damping-dominated relaxation (precession off, alpha forced to
  /// `relax_alpha`) until max torque < `torque_tol` (A/m) or `max_time`
  /// simulated seconds elapse. Leaves time() unchanged.
  /// Returns the final max torque.
  double relax(double torque_tol = 1.0, double max_time = 20e-9,
               double relax_alpha = 0.5);

  const StepStats& stats() const { return integrator_.stats(); }

  /// Current max |m x H| (A/m).
  double current_max_torque() const;

 private:
  Mesh mesh_;
  Material mat_;
  VectorField m_;
  mutable VectorField h_scratch_;
  std::vector<std::unique_ptr<FieldTerm>> terms_;
  std::vector<Probe> probes_;
  std::vector<double> alpha_profile_;
  Integrator integrator_;
  double t_ = 0.0;
};

}  // namespace sw::mag
