// Minimal 3-vector for magnetization and field values.
#pragma once

#include <cmath>

namespace sw::mag {

/// Plain 3-vector of doubles; value type, all ops inline.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr double dot(const Vec3& a, const Vec3& b) {
    return a.x * b.x + a.y * b.y + a.z * b.z;
  }
  friend constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
  }

  double norm() const { return std::sqrt(dot(*this, *this)); }
  constexpr double norm2() const { return dot(*this, *this); }

  /// Unit vector in the same direction; returns {0,0,0} for the zero vector.
  Vec3 normalized() const {
    const double n = norm();
    if (n == 0.0) return {};
    return {x / n, y / n, z / n};
  }
};

}  // namespace sw::mag
