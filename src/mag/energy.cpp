#include "mag/energy.h"

#include "util/constants.h"

namespace sw::mag {

using sw::util::kMu0;

double term_energy(const FieldTerm& term, const Material& mat,
                   const VectorField& m, double t) {
  VectorField h(m.mesh());
  term.accumulate(t, m, h);
  double acc = 0.0;
  for (std::size_t c = 0; c < m.size(); ++c) acc += dot(m[c], h[c]);
  return -term.energy_prefactor() * kMu0 * mat.Ms * acc *
         m.mesh().cell_volume();
}

std::vector<TermEnergy> energy_table(
    const std::vector<const FieldTerm*>& terms, const Material& mat,
    const VectorField& m, double t) {
  std::vector<TermEnergy> out;
  double total = 0.0;
  for (const auto* term : terms) {
    TermEnergy te;
    te.name = term->name();
    te.energy = term_energy(*term, mat, m, t);
    total += te.energy;
    out.push_back(te);
  }
  out.push_back({"total", total});
  return out;
}

}  // namespace sw::mag
