// Microwave antenna / magnetoelectric-cell excitation.
//
// Models a transducer as a localised, time-harmonic in-plane field applied
// over a footprint of cells — the standard micromagnetic abstraction of the
// ME cells used in the paper. A single AntennaField term owns all antennas
// on a waveguide so the inner loop touches each excited cell once.
#pragma once

#include <vector>

#include "mag/field_term.h"
#include "mag/mesh.h"

namespace sw::mag {

/// One transducer: h(t) = amplitude * envelope(t) * sin(2*pi*f*t + phase)
/// applied along `direction` over x in [x_center - width/2, x_center + width/2]
/// (all y, z within the footprint in the current 1-D/2-D waveguide usage).
struct Antenna {
  double x_center = 0.0;   ///< footprint centre along the waveguide [m]
  double width = 10e-9;    ///< footprint extent along x [m]
  double frequency = 0.0;  ///< drive frequency [Hz]
  double phase = 0.0;      ///< drive phase [rad]; pi encodes logic 1
  double amplitude = 0.0;  ///< peak field [A/m]
  Vec3 direction{1, 0, 0}; ///< field direction (unit vector)
  double t_on = 0.0;       ///< drive start [s]
  double t_off = -1.0;     ///< drive stop [s]; < 0 means "never"
  double ramp = 0.0;       ///< linear turn-on/off ramp time [s]

  /// Instantaneous drive factor (envelope * carrier) at time t.
  double drive(double t) const;
};

/// Field term aggregating every antenna on the mesh.
class AntennaField final : public FieldTerm {
 public:
  explicit AntennaField(const Mesh& mesh) : mesh_(mesh) {}

  /// Add one antenna; footprint must intersect the mesh (throws otherwise).
  void add(const Antenna& a);

  std::size_t count() const { return antennas_.size(); }
  const Antenna& antenna(std::size_t i) const { return antennas_[i].ant; }

  void accumulate(double t, const VectorField& m,
                  VectorField& H) const override;
  std::string name() const override { return "antennas"; }
  bool time_dependent() const override { return true; }
  double energy_prefactor() const override { return 1.0; }

 private:
  struct Placed {
    Antenna ant;
    std::size_t i_begin = 0;  ///< first x-index of the footprint
    std::size_t i_end = 0;    ///< one past last x-index
  };

  Mesh mesh_;
  std::vector<Placed> antennas_;
};

}  // namespace sw::mag
