// Rectangular finite-difference mesh (OOMMF's Oxs_RectangularMesh analogue).
#pragma once

#include <cstddef>

#include "mag/vec3.h"

namespace sw::mag {

/// Uniform rectangular mesh of nx*ny*nz cells with cell size (dx, dy, dz).
/// Cell (i, j, k) has its centre at ((i+0.5)dx, (j+0.5)dy, (k+0.5)dz).
class Mesh {
 public:
  Mesh() = default;

  /// Construct; all counts >= 1 and sizes > 0 (throws otherwise).
  Mesh(std::size_t nx, std::size_t ny, std::size_t nz, double dx, double dy,
       double dz);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  double dx() const { return dx_; }
  double dy() const { return dy_; }
  double dz() const { return dz_; }

  std::size_t cell_count() const { return nx_ * ny_ * nz_; }
  double cell_volume() const { return dx_ * dy_ * dz_; }

  /// Physical extent along each axis.
  double size_x() const { return static_cast<double>(nx_) * dx_; }
  double size_y() const { return static_cast<double>(ny_) * dy_; }
  double size_z() const { return static_cast<double>(nz_) * dz_; }

  /// Flat index of cell (i, j, k); x fastest (matches OOMMF/OVF ordering).
  std::size_t index(std::size_t i, std::size_t j, std::size_t k) const {
    return i + nx_ * (j + ny_ * k);
  }

  /// Inverse of index().
  void coords(std::size_t idx, std::size_t& i, std::size_t& j,
              std::size_t& k) const {
    i = idx % nx_;
    j = (idx / nx_) % ny_;
    k = idx / (nx_ * ny_);
  }

  /// Centre position of cell (i, j, k) in metres.
  Vec3 cell_center(std::size_t i, std::size_t j, std::size_t k) const {
    return {(static_cast<double>(i) + 0.5) * dx_,
            (static_cast<double>(j) + 0.5) * dy_,
            (static_cast<double>(k) + 0.5) * dz_};
  }

  /// Index of the cell containing physical x (clamped to the mesh).
  std::size_t cell_at_x(double x) const;

  bool operator==(const Mesh& o) const = default;

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  double dx_ = 0.0, dy_ = 0.0, dz_ = 0.0;
};

}  // namespace sw::mag
