// Landau-Lifshitz-Gilbert right-hand side.
#pragma once

#include <vector>

#include "mag/vector_field.h"

namespace sw::mag {

/// Parameters of the LLG equation of motion.
struct LlgParams {
  double gamma_mu0 = 0.0;  ///< gamma*mu0 [m/(A*s)]; field in A/m -> rad/s
  double alpha = 0.0;      ///< Gilbert damping
  bool precession = true;  ///< disable for pure-damping relaxation runs

  /// Optional per-cell damping overriding `alpha` (absorbing boundaries).
  /// Must be null or sized like the magnetisation field; not owned.
  const std::vector<double>* alpha_per_cell = nullptr;
};

/// dm/dt = -gamma'/(1+a^2) [ m x H + a m x (m x H) ], the explicit
/// (Landau-Lifshitz) form of the Gilbert equation.
///
/// `m` holds unit magnetisation, `H` the effective field in A/m; the result
/// is written into `dmdt` (same mesh).
void llg_rhs(const LlgParams& p, const VectorField& m, const VectorField& H,
             VectorField& dmdt);

/// Max |m x H| over cells, in A/m: the standard convergence criterion for
/// relaxation ("max torque" in OOMMF parlance).
double max_torque(const VectorField& m, const VectorField& H);

}  // namespace sw::mag
