// Time-series probes: record magnetisation at points or region averages
// while a simulation runs (OOMMF's data-table / mmDisp sampling analogue).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mag/mesh.h"
#include "mag/vector_field.h"

namespace sw::mag {

/// One recorded sample.
struct ProbeSample {
  double t = 0.0;
  Vec3 m;
};

/// Records the average reduced magnetisation over an x-range of the
/// waveguide (all y, z), sampled at a fixed rate.
class Probe {
 public:
  /// Probe a window [x_center - width/2, x_center + width/2] along x.
  Probe(std::string probe_name, const Mesh& mesh, double x_center, double width,
        double sample_interval);

  /// Record a sample if `t` has reached the next sampling deadline (the
  /// fixed grid k * sample_interval, k = 0, 1, ...).
  void maybe_sample(double t, const VectorField& m);

  /// Next deadline on the sampling grid [s]. Exposed so a driver can step
  /// the solver to exactly this time; uses the same arithmetic as
  /// maybe_sample so scheduler and probe can never disagree.
  double next_deadline() const {
    return static_cast<double>(next_index_) * interval_;
  }

  /// Unconditionally record a sample at time t.
  void sample(double t, const VectorField& m);

  const std::string& name() const { return name_; }
  double x_center() const { return x_center_; }
  const std::vector<ProbeSample>& samples() const { return samples_; }
  double sample_interval() const { return interval_; }

  /// Extract one component ('x', 'y' or 'z') as a plain signal.
  std::vector<double> component(char axis) const;

  /// Times of all samples.
  std::vector<double> times() const;

  /// Effective sample rate [Hz].
  double sample_rate() const { return 1.0 / interval_; }

  void clear();

 private:
  std::string name_;
  Mesh mesh_;
  double x_center_ = 0.0;
  double interval_ = 0.0;
  std::size_t next_index_ = 0;  ///< next deadline is next_index_ * interval_
  std::size_t i_begin_ = 0, i_end_ = 0;  ///< x-range of the window
  std::vector<ProbeSample> samples_;
};

}  // namespace sw::mag
