#include "mag/simulation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/constants.h"
#include "util/error.h"

namespace sw::mag {

Simulation::Simulation(const Mesh& mesh, const Material& mat,
                       const IntegratorOptions& opts)
    : mesh_(mesh),
      mat_(mat),
      m_(mesh, mat.easy_axis.normalized()),
      h_scratch_(mesh),
      integrator_(opts) {
  mat.validate();
}

Probe& Simulation::add_probe(std::string name, double x_center, double width,
                             double sample_interval) {
  probes_.emplace_back(std::move(name), mesh_, x_center, width,
                       sample_interval);
  return probes_.back();
}

void Simulation::effective_field(double t, const VectorField& m,
                                 VectorField& H) const {
  H.zero();
  for (const auto& term : terms_) term->accumulate(t, m, H);
}

void Simulation::set_damping_profile(std::vector<double> alpha_per_cell) {
  SW_REQUIRE(alpha_per_cell.empty() || alpha_per_cell.size() == m_.size(),
             "damping profile size mismatch");
  alpha_profile_ = std::move(alpha_per_cell);
}

void Simulation::add_absorbing_ends(double width, double alpha_max) {
  SW_REQUIRE(width > 0.0 && width < 0.5 * mesh_.size_x(),
             "absorber width must be positive and below half the guide");
  SW_REQUIRE(alpha_max >= mat_.alpha, "alpha_max below material damping");
  if (alpha_profile_.empty()) {
    alpha_profile_.assign(m_.size(), mat_.alpha);
  }
  const std::size_t nx = mesh_.nx(), ny = mesh_.ny(), nz = mesh_.nz();
  const double lx = mesh_.size_x();
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t i = 0; i < nx; ++i) {
        const double x = (static_cast<double>(i) + 0.5) * mesh_.dx();
        const double edge = std::min(x, lx - x);
        if (edge >= width) continue;
        const double u = 1.0 - edge / width;  // 0 at inner edge, 1 at wall
        const double a = mat_.alpha + (alpha_max - mat_.alpha) * u * u;
        auto& cell = alpha_profile_[mesh_.index(i, j, k)];
        cell = std::max(cell, a);
      }
    }
  }
}

void Simulation::run_until(double t_end) {
  SW_REQUIRE(t_end >= t_, "t_end is in the past");
  LlgParams p;
  p.gamma_mu0 = sw::util::kGammaMu0;
  p.alpha = mat_.alpha;
  p.precession = true;
  if (!alpha_profile_.empty()) p.alpha_per_cell = &alpha_profile_;

  const RhsFn rhs = [this, &p](double t, const VectorField& m,
                               VectorField& dmdt) {
    effective_field(t, m, h_scratch_);
    llg_rhs(p, m, h_scratch_, dmdt);
  };

  // Chunk the run at probe deadlines so samples land on exact times.
  double next_deadline = t_end;
  const auto earliest_probe_deadline = [this]() {
    double d = std::numeric_limits<double>::infinity();
    for (auto& pr : probes_) d = std::min(d, pr.next_deadline());
    return d;
  };

  if (probes_.empty()) {
    integrator_.advance(rhs, m_, t_, t_end);
    t_ = t_end;
    return;
  }

  while (t_ < t_end) {
    next_deadline = std::min(earliest_probe_deadline(), t_end);
    if (next_deadline <= t_ + 1e-30) {
      for (auto& pr : probes_) pr.maybe_sample(t_, m_);
      next_deadline = std::min(earliest_probe_deadline(), t_end);
      if (next_deadline <= t_ + 1e-30) break;  // nothing left before t_end
    }
    integrator_.advance(rhs, m_, t_, next_deadline);
    t_ = next_deadline;
    for (auto& pr : probes_) pr.maybe_sample(t_, m_);
  }
  if (t_ < t_end) {
    integrator_.advance(rhs, m_, t_, t_end);
    t_ = t_end;
  }
}

double Simulation::relax(double torque_tol, double max_time,
                         double relax_alpha) {
  LlgParams p;
  p.gamma_mu0 = sw::util::kGammaMu0;
  p.alpha = relax_alpha;
  p.precession = false;

  const RhsFn rhs = [this, &p](double t, const VectorField& m,
                               VectorField& dmdt) {
    effective_field(t, m, h_scratch_);
    llg_rhs(p, m, h_scratch_, dmdt);
  };

  IntegratorOptions ro = integrator_.options();
  ro.stepper = Stepper::kRkf54;
  ro.tolerance = 1e-4;
  Integrator relax_integrator(ro);

  double t = 0.0;
  const double chunk = std::max(max_time / 200.0, ro.dt_max * 10.0);
  double torque = std::numeric_limits<double>::infinity();
  while (t < max_time) {
    const double t_next = std::min(t + chunk, max_time);
    relax_integrator.advance(rhs, m_, t, t_next);
    t = t_next;
    effective_field(t_, m_, h_scratch_);
    torque = max_torque(m_, h_scratch_);
    if (torque < torque_tol) break;
  }
  return torque;
}

double Simulation::current_max_torque() const {
  effective_field(t_, m_, h_scratch_);
  return max_torque(m_, h_scratch_);
}

}  // namespace sw::mag
