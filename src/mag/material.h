// Magnetic material parameters and presets.
#pragma once

#include <string>

#include "mag/vec3.h"

namespace sw::mag {

/// Homogeneous ferromagnet description (SI units throughout).
struct Material {
  std::string name = "unnamed";
  double Ms = 0.0;        ///< saturation magnetisation [A/m]
  double Aex = 0.0;       ///< exchange stiffness [J/m]
  double alpha = 0.0;     ///< Gilbert damping [-]
  double Ku = 0.0;        ///< uniaxial anisotropy constant [J/m^3]
  Vec3 easy_axis{0, 0, 1};///< anisotropy easy axis (unit vector)

  /// Anisotropy field magnitude 2*Ku/(mu0*Ms) [A/m].
  double anisotropy_field() const;

  /// Exchange length sqrt(2*Aex/(mu0*Ms^2)) [m].
  double exchange_length() const;

  /// gamma*mu0*Ms [rad/s]; the natural magnon frequency scale.
  double omega_m() const;

  /// Validate physical ranges; throws sw::util::Error on nonsense values.
  void validate() const;
};

/// Fe60Co20B20 with PMA, parameters straight from the paper (Devolder 2016):
/// Ms = 1.1 MA/m, Aex = 18.5 pJ/m, alpha = 0.004, Ku = 8.3177e5 J/m^3.
Material make_fecob();

/// Yttrium iron garnet, the canonical low-damping magnonic material.
Material make_yig();

/// Permalloy (Ni80Fe20).
Material make_permalloy();

/// Look up a preset by case-insensitive name ("FeCoB", "YIG", "Py").
Material material_by_name(const std::string& name);

}  // namespace sw::mag
