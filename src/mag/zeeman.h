// Static external (Zeeman) field.
#pragma once

#include "mag/field_term.h"

namespace sw::mag {

/// Spatially uniform, time-independent applied field.
class UniformZeemanField final : public FieldTerm {
 public:
  explicit UniformZeemanField(const Vec3& H_ext) : h_(H_ext) {}

  void accumulate(double t, const VectorField& m,
                  VectorField& H) const override;
  std::string name() const override { return "zeeman"; }
  double energy_prefactor() const override { return 1.0; }

  const Vec3& field() const { return h_; }

 private:
  Vec3 h_;
};

}  // namespace sw::mag
