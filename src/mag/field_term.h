// Effective-field term interface (OOMMF "energy" object analogue).
//
// Each term adds its contribution (in A/m) to the effective field given the
// current reduced magnetisation m (unit vectors) and time. Terms are owned by
// the Simulation and summed every right-hand-side evaluation.
#pragma once

#include <string>

#include "mag/vector_field.h"

namespace sw::mag {

class FieldTerm {
 public:
  virtual ~FieldTerm() = default;

  /// Accumulate this term's field into `H` (A/m). `m` holds unit vectors.
  virtual void accumulate(double t, const VectorField& m,
                          VectorField& H) const = 0;

  /// Short identifier for logs and energy tables.
  virtual std::string name() const = 0;

  /// True if the term depends on time explicitly (affects caching upstream).
  virtual bool time_dependent() const { return false; }

  /// Energy density prefactor: E = -pf * mu0 * Ms * sum_c m.H V_cell.
  /// 0.5 for self-consistent (m-dependent) terms such as exchange, demag and
  /// anisotropy; 1.0 for external fields (Zeeman, antennas).
  virtual double energy_prefactor() const { return 0.5; }
};

}  // namespace sw::mag
