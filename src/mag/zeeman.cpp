#include "mag/zeeman.h"

namespace sw::mag {

void UniformZeemanField::accumulate(double /*t*/, const VectorField& /*m*/,
                                    VectorField& H) const {
  for (std::size_t c = 0; c < H.size(); ++c) H[c] += h_;
}

}  // namespace sw::mag
