#include "mag/vector_field.h"

#include <algorithm>

#include "util/error.h"

namespace sw::mag {

VectorField::VectorField(const Mesh& mesh)
    : mesh_(mesh), data_(mesh.cell_count()) {}

VectorField::VectorField(const Mesh& mesh, const Vec3& fill)
    : mesh_(mesh), data_(mesh.cell_count(), fill) {}

void VectorField::fill(const Vec3& v) {
  std::fill(data_.begin(), data_.end(), v);
}

void VectorField::add_scaled(const VectorField& other, double s) {
  SW_REQUIRE(other.size() == size(), "field size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i] * s;
  }
}

void VectorField::assign_sum(const VectorField& a, const VectorField& b,
                             double s) {
  SW_REQUIRE(a.size() == b.size(), "field size mismatch");
  if (data_.size() != a.size()) {
    mesh_ = a.mesh();
    data_.resize(a.size());
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] = a.data_[i] + b.data_[i] * s;
  }
}

void VectorField::normalize() {
  for (auto& v : data_) {
    const double n = v.norm();
    if (n > 0.0) v *= 1.0 / n;
  }
}

Vec3 VectorField::average() const { return average_range(0, data_.size()); }

Vec3 VectorField::average_range(std::size_t begin, std::size_t end) const {
  SW_REQUIRE(begin <= end && end <= data_.size(), "bad range");
  if (begin == end) return {};
  Vec3 acc;
  for (std::size_t i = begin; i < end; ++i) acc += data_[i];
  return acc * (1.0 / static_cast<double>(end - begin));
}

double VectorField::max_norm() const {
  double m = 0.0;
  for (const auto& v : data_) m = std::max(m, v.norm2());
  return std::sqrt(m);
}

}  // namespace sw::mag
