// Heisenberg exchange field via the 6-neighbour Laplacian.
#pragma once

#include "mag/field_term.h"
#include "mag/material.h"
#include "mag/mesh.h"

namespace sw::mag {

/// H_ex = (2*Aex / (mu0 * Ms)) * Laplacian(m), Neumann (mirror) boundaries,
/// the same discretisation OOMMF's Oxs_UniformExchange uses.
class ExchangeField final : public FieldTerm {
 public:
  ExchangeField(const Mesh& mesh, const Material& mat);

  void accumulate(double t, const VectorField& m,
                  VectorField& H) const override;
  std::string name() const override { return "exchange"; }

  /// Field prefactor 2*Aex/(mu0*Ms) [A*m].
  double prefactor() const { return prefactor_; }

 private:
  Mesh mesh_;
  double prefactor_ = 0.0;
  double inv_dx2_ = 0.0, inv_dy2_ = 0.0, inv_dz2_ = 0.0;
};

}  // namespace sw::mag
