#include "mag/demag_factors.h"

#include <cmath>

#include "util/constants.h"
#include "util/error.h"

namespace sw::mag {

using sw::util::kPi;

double demag_factor_z(double lx, double ly, double lz) {
  SW_REQUIRE(lx > 0.0 && ly > 0.0 && lz > 0.0, "edge lengths must be > 0");
  // Aharoni's formula uses semi-axes.
  const double a = 0.5 * lx;
  const double b = 0.5 * ly;
  const double c = 0.5 * lz;

  const double a2 = a * a, b2 = b * b, c2 = c * c;
  const double r_abc = std::sqrt(a2 + b2 + c2);
  const double r_ab = std::sqrt(a2 + b2);
  const double r_bc = std::sqrt(b2 + c2);
  const double r_ac = std::sqrt(a2 + c2);

  double nz = 0.0;
  nz += (b2 - c2) / (2.0 * b * c) * std::log((r_abc - a) / (r_abc + a));
  nz += (a2 - c2) / (2.0 * a * c) * std::log((r_abc - b) / (r_abc + b));
  nz += b / (2.0 * c) * std::log((r_ab + a) / (r_ab - a));
  nz += a / (2.0 * c) * std::log((r_ab + b) / (r_ab - b));
  nz += c / (2.0 * a) * std::log((r_bc - b) / (r_bc + b));
  nz += c / (2.0 * b) * std::log((r_ac - a) / (r_ac + a));
  nz += 2.0 * std::atan2(a * b, c * r_abc);
  nz += (a2 * a + b2 * b - 2.0 * c2 * c) / (3.0 * a * b * c);
  nz += (a2 + b2 - 2.0 * c2) * r_abc / (3.0 * a * b * c);
  nz += c / (a * b) * (r_ac + r_bc);
  nz -= (r_ab * r_ab * r_ab + r_bc * r_bc * r_bc + r_ac * r_ac * r_ac) /
        (3.0 * a * b * c);
  return nz / kPi;
}

Vec3 demag_factors(double lx, double ly, double lz) {
  return {demag_factor_z(ly, lz, lx), demag_factor_z(lz, lx, ly),
          demag_factor_z(lx, ly, lz)};
}

Vec3 demag_factors_waveguide(double width, double thickness) {
  SW_REQUIRE(width > 0.0 && thickness > 0.0, "bad cross-section");
  // 1e3 aspect keeps the Aharoni expressions well conditioned while the
  // long-axis factor is already < 1e-3 of the trace.
  const double long_x = 1e3 * std::max(width, thickness);
  Vec3 n = demag_factors(long_x, width, thickness);
  n.x = std::max(n.x, 0.0);
  n.y = std::max(n.y, 0.0);
  n.z = std::max(n.z, 0.0);
  const double tr = n.x + n.y + n.z;
  SW_REQUIRE(tr > 0.5, "demag factor computation degenerated");
  return {n.x / tr, n.y / tr, n.z / tr};
}

}  // namespace sw::mag
