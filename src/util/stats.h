// Summary statistics and small regression helpers for experiment harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sw::util {

/// Basic running summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Compute a Summary over the span (empty spans allowed: count == 0).
Summary summarize(std::span<const double> xs);

/// Least-squares line y = slope*x + intercept; returns {slope, intercept, r2}.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Root-mean-square of a signal.
double rms(std::span<const double> xs);

/// Index of the maximum absolute value.
std::size_t argmax_abs(std::span<const double> xs);

/// Wrap an angle to (-pi, pi].
double wrap_angle(double a);

/// Smallest absolute difference between two angles, in [0, pi].
double angle_distance(double a, double b);

/// Linearly spaced vector of n points in [lo, hi] inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace sw::util
