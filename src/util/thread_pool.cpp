#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>
#include <vector>


namespace sw::util {

ThreadPool::ThreadPool(std::size_t num_threads, bool always_spawn) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  size_ = num_threads;
  if (size_ == 1 && !always_spawn) return;  // inline mode: no workers, no locking
  workers_.reserve(size_);
  try {
    for (std::size_t i = 0; i < size_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Partial spawn (e.g. EAGAIN): shut down the workers that did start
    // before rethrowing, or their joinable destructors would terminate().
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++idle_;
      wake_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      --idle_;
      if (jobs_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void ThreadPool::post(std::function<void()> job) {
  if (workers_.empty()) {
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push(std::move(job));
    // Wake elision: a non-idle worker is either running a job or between
    // its decrement and the pop, and in both cases re-checks the queue
    // under the mutex before it can sleep — so when nobody is parked the
    // (futex-priced) notify is provably unnecessary.
    if (idle_ == 0) return;
  }
  wake_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    fn(0, n);
    return;
  }

  const std::size_t chunks = std::min(size_, n);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::vector<std::pair<std::size_t, std::size_t>> bounds;
  bounds.reserve(chunks);
  for (std::size_t c = 0, begin = 0; c < chunks; ++c) {
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    bounds.emplace_back(begin, end);
    begin = end;
  }

  // done_mutex guards `remaining` and `first_error`; the decrement must
  // happen under the lock so the caller cannot observe remaining == 0 and
  // unwind these stack locals while a worker is still about to touch them.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = chunks;
  std::exception_ptr first_error;

  const auto run_chunk = [&](std::size_t begin, std::size_t end) {
    std::exception_ptr error;
    try {
      fn(begin, end);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> dlock(done_mutex);
    if (error && !first_error) first_error = error;
    if (--remaining == 0) done_cv.notify_one();
  };

  // Enqueue what allocation allows; chunks that fail to enqueue run inline
  // on the caller below, so a bad_alloc mid-enqueue degrades to less
  // parallelism instead of unwinding stack state the queued jobs reference.
  std::size_t enqueued = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    try {
      for (; enqueued < chunks; ++enqueued) {
        const auto [b, e] = bounds[enqueued];
        jobs_.push([&run_chunk, b, e] { run_chunk(b, e); });
      }
    } catch (...) {
    }
  }
  wake_.notify_all();
  for (std::size_t c = enqueued; c < chunks; ++c) {
    run_chunk(bounds[c].first, bounds[c].second);
  }

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sw::util
