#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sw::util {

std::string_view trim(std::string_view s) {
  const auto not_space = [](unsigned char c) { return !std::isspace(c); };
  const auto b = std::find_if(s.begin(), s.end(), not_space);
  const auto e = std::find_if(s.rbegin(), s.rend(), not_space).base();
  if (b >= e) return {};
  return s.substr(static_cast<std::size_t>(b - s.begin()),
                  static_cast<std::size_t>(e - b));
}

std::vector<std::string> split(std::string_view s, char delim,
                               bool trim_fields) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    std::string_view field = (pos == std::string_view::npos)
                                 ? s.substr(start)
                                 : s.substr(start, pos - start);
    if (trim_fields) field = trim(field);
    out.emplace_back(field);
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is available in GCC 11+.
  double v = 0.0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  if (res.ec != std::errc{} || res.ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

std::optional<long> parse_long(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long v = 0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  if (res.ec != std::errc{} || res.ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

std::optional<bool> parse_bool(std::string_view s) {
  const std::string t = to_lower(trim(s));
  if (t == "true" || t == "1" || t == "yes" || t == "on") return true;
  if (t == "false" || t == "0" || t == "no" || t == "off") return false;
  return std::nullopt;
}

std::string format_sig(double v, int significant_digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", significant_digits, v);
  return buf;
}

}  // namespace sw::util
