// Scalar root finding and 1-D minimisation used by the dispersion module to
// invert f(k) -> k and locate band edges.
#pragma once

#include <functional>

namespace sw::util {

/// Options for the root finders.
struct RootOptions {
  double x_tol = 1e-14;     ///< absolute tolerance on the abscissa
  double f_tol = 0.0;       ///< stop when |f| <= f_tol (0 disables)
  int max_iterations = 200; ///< hard iteration cap
};

/// Result of a root solve.
struct RootResult {
  double x = 0.0;        ///< best abscissa found
  double f = 0.0;        ///< residual at x
  int iterations = 0;    ///< iterations used
  bool converged = false;
};

/// Brent's method on [a, b]. Requires f(a) and f(b) to bracket a root
/// (opposite signs); throws sw::util::Error otherwise.
RootResult brent(const std::function<double(double)>& f, double a, double b,
                 const RootOptions& opts = {});

/// Plain bisection on [a, b]; same bracketing contract as brent(). Slower but
/// useful as an oracle in tests.
RootResult bisect(const std::function<double(double)>& f, double a, double b,
                  const RootOptions& opts = {});

/// Expand [a, b] geometrically until f changes sign or `max_expansions` is
/// hit. Returns true and updates a/b on success.
bool expand_bracket(const std::function<double(double)>& f, double& a,
                    double& b, int max_expansions = 60);

/// Golden-section minimisation of a unimodal f on [a, b].
double golden_min(const std::function<double(double)>& f, double a, double b,
                  double x_tol = 1e-12);

}  // namespace sw::util
