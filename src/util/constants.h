// Physical constants used throughout the library (SI units).
#pragma once

namespace sw::util {

/// Vacuum permeability [T*m/A].
inline constexpr double kMu0 = 1.25663706212e-6;

/// Electron gyromagnetic ratio magnitude [rad/(s*T)] (g = 2.002319).
inline constexpr double kGammaE = 1.76085963023e11;

/// OOMMF-style Landau-Lifshitz gyromagnetic ratio gamma*mu0 [m/(A*s)].
/// Multiplying a field in A/m yields an angular rate in rad/s.
inline constexpr double kGammaMu0 = kGammaE * kMu0;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Reduced Planck constant [J*s].
inline constexpr double kHbar = 1.054571817e-34;

/// pi, to double precision.
inline constexpr double kPi = 3.14159265358979323846;

/// 2*pi.
inline constexpr double kTwoPi = 2.0 * kPi;

}  // namespace sw::util
