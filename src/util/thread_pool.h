// Minimal fixed-size worker pool for data-parallel fan-out.
//
// The batch-evaluation subsystem needs to sweep large input batches across
// every core without paying thread start-up per call, so the pool keeps its
// workers alive and parked on a condition variable between jobs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sw::util {

class ThreadPool {
 public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency() (at
  /// least 1). A single-thread pool runs jobs inline on the calling thread,
  /// so small hosts pay no synchronisation overhead.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  /// Partition [0, n) into contiguous chunks (roughly one per worker) and
  /// run `fn(begin, end)` on each; blocks until every chunk is done.
  /// Exceptions thrown by `fn` are rethrown on the calling thread (the
  /// first one wins; remaining chunks still run to completion).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::size_t size_ = 1;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

}  // namespace sw::util
