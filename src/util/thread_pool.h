// Minimal fixed-size worker pool for data-parallel fan-out.
//
// The batch-evaluation subsystem needs to sweep large input batches across
// every core without paying thread start-up per call, so the pool keeps its
// workers alive and parked on a condition variable between jobs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sw::util {

class ThreadPool {
 public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency() (at
  /// least 1). By default a single-thread pool runs jobs inline on the
  /// calling thread, so small hosts pay no synchronisation overhead;
  /// `always_spawn` forces a dedicated worker even then, which `post`-based
  /// callers (the evaluator service's request queue) need so submission
  /// stays asynchronous on one-core hosts.
  explicit ThreadPool(std::size_t num_threads = 0, bool always_spawn = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  /// Partition [0, n) into contiguous chunks (roughly one per worker) and
  /// run `fn(begin, end)` on each; blocks until every chunk is done.
  /// Exceptions thrown by `fn` are rethrown on the calling thread (the
  /// first one wins; remaining chunks still run to completion).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Work-queue hook: enqueue one job for asynchronous execution and return
  /// without waiting for it. Jobs run in FIFO order relative to other
  /// posted jobs. On an inline pool (no spawned workers) the job runs on
  /// the calling thread before post() returns. The job must not throw —
  /// there is no caller left to receive the exception, so a throwing job
  /// terminates the process; wrap fallible work in its own try/catch.
  void post(std::function<void()> job);

 private:
  void worker_loop();

  std::size_t size_ = 1;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::size_t idle_ = 0;  ///< workers parked in wake_.wait (under mutex_)
  bool stop_ = false;
};

}  // namespace sw::util
