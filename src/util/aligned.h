// Over-aligned heap allocation for SIMD-friendly containers.
//
// The SoA evaluation plans keep their contribution arrays on cache-line
// boundaries so vector kernels can assume aligned rows and an array never
// straddles a line it does not own. std::allocator already honours
// alignof(T) for over-aligned element types (C++17 aligned new), but the
// plan arrays are plain double/uint32 — their *element* type carries no
// alignment demand, so the container must ask for it explicitly.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace sw::util {

/// Minimal allocator that rounds every allocation up to `Alignment` bytes.
/// Stateless: all instances compare equal, so containers can swap/move
/// storage freely.
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the element type's requirement");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n > static_cast<std::size_t>(-1) / sizeof(T)) throw std::bad_alloc();
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector whose data() is aligned to `Alignment` bytes (default: one
/// cache line, which also satisfies AVX2/AVX-512 load alignment).
template <typename T, std::size_t Alignment = 64>
using AlignedVector = std::vector<T, AlignedAllocator<T, Alignment>>;

}  // namespace sw::util
