#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/constants.h"
#include "util/error.h"

namespace sw::util {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    s.sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = s.sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double acc = 0.0;
    for (double x : xs) acc += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(acc / static_cast<double>(s.count - 1));
  }
  return s;
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  SW_REQUIRE(xs.size() == ys.size(), "x/y size mismatch");
  SW_REQUIRE(xs.size() >= 2, "need at least two points");
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  SW_REQUIRE(std::abs(denom) > 0.0, "degenerate x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += r * r;
  }
  fit.r2 = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double rms(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

std::size_t argmax_abs(std::span<const double> xs) {
  SW_REQUIRE(!xs.empty(), "empty span");
  std::size_t best = 0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (std::abs(xs[i]) > std::abs(xs[best])) best = i;
  }
  return best;
}

double wrap_angle(double a) {
  a = std::fmod(a + kPi, kTwoPi);
  if (a <= 0.0) a += kTwoPi;
  return a - kPi;
}

double angle_distance(double a, double b) {
  return std::abs(wrap_angle(a - b));
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  SW_REQUIRE(n >= 2, "linspace needs n >= 2");
  std::vector<double> v(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) v[i] = lo + step * static_cast<double>(i);
  v.back() = hi;
  return v;
}

}  // namespace sw::util
