#include "util/interp.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace sw::util {

LinearTable::LinearTable(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  SW_REQUIRE(xs_.size() == ys_.size(), "x/y size mismatch");
  SW_REQUIRE(xs_.size() >= 2, "need at least two points");
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    SW_REQUIRE(xs_[i] > xs_[i - 1], "abscissae must be strictly increasing");
  }
}

std::size_t LinearTable::segment(double x) const {
  // Index of the segment [xs_[i], xs_[i+1]] used for x, clamped to the ends.
  if (x <= xs_.front()) return 0;
  if (x >= xs_.back()) return xs_.size() - 2;
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  return static_cast<std::size_t>(it - xs_.begin()) - 1;
}

double LinearTable::operator()(double x) const {
  SW_REQUIRE(!xs_.empty(), "empty table");
  const std::size_t i = segment(x);
  const double t = (x - xs_[i]) / (xs_[i + 1] - xs_[i]);
  return ys_[i] + t * (ys_[i + 1] - ys_[i]);
}

double LinearTable::derivative(double x) const {
  SW_REQUIRE(!xs_.empty(), "empty table");
  const std::size_t i = segment(x);
  return (ys_[i + 1] - ys_[i]) / (xs_[i + 1] - xs_[i]);
}

double LinearTable::inverse(double y) const {
  SW_REQUIRE(!xs_.empty(), "empty table");
  const bool increasing = ys_.back() > ys_.front();
  for (std::size_t i = 1; i < ys_.size(); ++i) {
    SW_REQUIRE((ys_[i] > ys_[i - 1]) == increasing && ys_[i] != ys_[i - 1],
               "table not strictly monotonic in y");
  }
  const double lo = increasing ? ys_.front() : ys_.back();
  const double hi = increasing ? ys_.back() : ys_.front();
  SW_REQUIRE(y >= lo && y <= hi, "inverse target outside table range");
  // Find the segment containing y.
  for (std::size_t i = 0; i + 1 < ys_.size(); ++i) {
    const double y0 = ys_[i];
    const double y1 = ys_[i + 1];
    const bool inside = increasing ? (y >= y0 && y <= y1)
                                   : (y <= y0 && y >= y1);
    if (inside) {
      const double t = (y - y0) / (y1 - y0);
      return xs_[i] + t * (xs_[i + 1] - xs_[i]);
    }
  }
  SW_ASSERT(false, "segment search failed");
}

}  // namespace sw::util
