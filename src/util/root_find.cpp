#include "util/root_find.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace sw::util {

RootResult brent(const std::function<double(double)>& f, double a, double b,
                 const RootOptions& opts) {
  double fa = f(a);
  double fb = f(b);
  SW_REQUIRE(std::isfinite(fa) && std::isfinite(fb),
             "endpoint evaluation not finite");
  SW_REQUIRE(fa * fb <= 0.0, "root not bracketed");

  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};

  // Classic Brent: keep b the best estimate, a the previous one, c the
  // counterpoint bracketing the root with b.
  double c = a, fc = fa;
  double d = b - a, e = d;

  RootResult out;
  for (int it = 1; it <= opts.max_iterations; ++it) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol = 2.0 * std::numeric_limits<double>::epsilon() *
                           std::abs(b) + 0.5 * opts.x_tol;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0 ||
        (opts.f_tol > 0.0 && std::abs(fb) <= opts.f_tol)) {
      return {b, fb, it, true};
    }
    if (std::abs(e) < tol || std::abs(fa) <= std::abs(fb)) {
      d = m; e = m;  // bisection
    } else {
      double p, q;
      const double s = fb / fa;
      if (a == c) {  // secant
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {  // inverse quadratic interpolation
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q; else p = -p;
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q),
                             std::abs(e * q))) {
        e = d; d = p / q;  // accept interpolation
      } else {
        d = m; e = m;  // fall back to bisection
      }
    }
    a = b; fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) { c = a; fc = fa; e = d = b - a; }
    out = {b, fb, it, false};
  }
  return out;
}

RootResult bisect(const std::function<double(double)>& f, double a, double b,
                  const RootOptions& opts) {
  double fa = f(a);
  double fb = f(b);
  SW_REQUIRE(fa * fb <= 0.0, "root not bracketed");
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  for (int it = 1; it <= opts.max_iterations; ++it) {
    const double m = 0.5 * (a + b);
    const double fm = f(m);
    if (fm == 0.0 || 0.5 * (b - a) < opts.x_tol ||
        (opts.f_tol > 0.0 && std::abs(fm) <= opts.f_tol)) {
      return {m, fm, it, true};
    }
    if ((fm > 0.0) == (fa > 0.0)) { a = m; fa = fm; } else { b = m; fb = fm; }
  }
  return {0.5 * (a + b), f(0.5 * (a + b)), opts.max_iterations, false};
}

bool expand_bracket(const std::function<double(double)>& f, double& a,
                    double& b, int max_expansions) {
  SW_REQUIRE(a < b, "bracket must be ordered");
  double fa = f(a);
  double fb = f(b);
  for (int i = 0; i < max_expansions; ++i) {
    if (fa * fb <= 0.0) return true;
    const double w = b - a;
    if (std::abs(fa) < std::abs(fb)) { a -= w; fa = f(a); }
    else { b += w; fb = f(b); }
  }
  return fa * fb <= 0.0;
}

double golden_min(const std::function<double(double)>& f, double a, double b,
                  double x_tol) {
  SW_REQUIRE(a < b, "interval must be ordered");
  constexpr double kInvPhi = 0.6180339887498949;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  while (b - a > x_tol) {
    if (f1 < f2) {
      b = x2; x2 = x1; f2 = f1;
      x1 = b - kInvPhi * (b - a); f1 = f(x1);
    } else {
      a = x1; x1 = x2; f1 = f2;
      x2 = a + kInvPhi * (b - a); f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace sw::util
