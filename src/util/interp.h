// Tabulated-function interpolation (used for dispersion tables and
// solver-calibrated wavelength lookups).
#pragma once

#include <span>
#include <vector>

namespace sw::util {

/// Piecewise-linear interpolant over strictly increasing abscissae.
/// Evaluation outside the table extrapolates linearly from the end segments.
class LinearTable {
 public:
  LinearTable() = default;

  /// Build from matching x/y arrays; x must be strictly increasing and have
  /// at least two entries.
  LinearTable(std::vector<double> xs, std::vector<double> ys);

  /// Interpolated value at x.
  double operator()(double x) const;

  /// Derivative of the interpolant at x (piecewise constant).
  double derivative(double x) const;

  /// Solve y(x) = y for x assuming y is monotonic over the table; throws if
  /// the table is not monotonic in y or y is outside the range.
  double inverse(double y) const;

  std::size_t size() const { return xs_.size(); }
  std::span<const double> xs() const { return xs_; }
  std::span<const double> ys() const { return ys_; }

 private:
  std::size_t segment(double x) const;

  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace sw::util
