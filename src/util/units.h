// Small unit helpers so dimensioned quantities read naturally at call sites:
//   excite(10.0 * units::GHz, 50 * units::nm);
// All values are plain doubles in SI units; the helpers are multipliers.
#pragma once

namespace sw::units {

// Length.
inline constexpr double m = 1.0;
inline constexpr double cm = 1e-2;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

// Time.
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;
inline constexpr double fs = 1e-15;

// Frequency.
inline constexpr double Hz = 1.0;
inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;
inline constexpr double THz = 1e12;

// Energy / power.
inline constexpr double J = 1.0;
inline constexpr double mJ = 1e-3;
inline constexpr double uJ = 1e-6;
inline constexpr double nJ = 1e-9;
inline constexpr double pJ = 1e-12;
inline constexpr double fJ = 1e-15;
inline constexpr double aJ = 1e-18;
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;
inline constexpr double nW = 1e-9;

// Area.
inline constexpr double m2 = 1.0;
inline constexpr double um2 = 1e-12;
inline constexpr double nm2 = 1e-18;

}  // namespace sw::units
