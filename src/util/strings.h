// String utilities backing the MIF-lite parser and table writers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sw::util {

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter; empty fields are kept. `trim_fields` trims each.
std::vector<std::string> split(std::string_view s, char delim,
                               bool trim_fields = false);

/// Split on arbitrary whitespace runs; no empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parse helpers returning nullopt on malformed input (no exceptions).
std::optional<double> parse_double(std::string_view s);
std::optional<long> parse_long(std::string_view s);
std::optional<bool> parse_bool(std::string_view s);  // true/false/1/0/yes/no

/// printf-style double formatting with given significant digits.
std::string format_sig(double v, int significant_digits);

}  // namespace sw::util
