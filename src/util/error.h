// Error handling: a library-wide exception type plus precondition macros.
//
// Following the C++ Core Guidelines (E.2, I.6): throw on violated runtime
// contracts that callers can reasonably trigger; use SW_ASSERT for internal
// invariants that indicate a library bug.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sw::util {

/// Exception thrown on violated runtime contracts (bad arguments, malformed
/// files, non-converging solves).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace sw::util

/// Throw sw::util::Error with file/line context when `cond` is false.
#define SW_REQUIRE(cond, msg)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::sw::util::detail::throw_error(__FILE__, __LINE__,           \
                                      std::string("requirement `") + \
                                          #cond "` failed: " + (msg)); \
    }                                                               \
  } while (false)

/// Internal invariant check; same behaviour as SW_REQUIRE but reads as a bug
/// report rather than caller error.
#define SW_ASSERT(cond, msg)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::sw::util::detail::throw_error(                                \
          __FILE__, __LINE__,                                         \
          std::string("internal invariant `") + #cond "` broken: " + \
              (msg));                                                 \
    }                                                                 \
  } while (false)
